"""Client resilience: retry policies, graceful degradation, the sweep.

Reproduces the section 3.3.3 finding: a fixed long retry interval
(H5-style) turns transient faults into long stalls, while capped
exponential backoff recovers quickly.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.analysis.faults import ErrorBurst, FaultSpec, SeededErrors
from repro.core.parallel import RunSpec, execute_run_spec_with_result
from repro.blackbox.resilience import (
    run_resilience_sweep,
    standard_fault_scenarios,
)
from tests.support import run_session
from repro.net.faults import DeadAirWindow
from repro.net.http import ContentKind
from repro.net.schedule import ConstantSchedule
from repro.player.config import PlayerConfig
from repro.player.events import DownloadFailed, SegmentSkipped, SessionEnded
from repro.player.player import PlayerState
from repro.player.resilience import DegradationPolicy, RetryPolicy
from repro.services import get_service
from repro.util import DeterministicRng, mbps

# ---------------------------------------------------------------------------
# RetryPolicy units
# ---------------------------------------------------------------------------


def test_retry_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(base_delay_s=0.0)
    with pytest.raises(ValueError):
        RetryPolicy(backoff_factor=0.5)
    with pytest.raises(ValueError):
        RetryPolicy(jitter_fraction=1.0)
    with pytest.raises(ValueError):
        RetryPolicy(request_timeout_s=0.0)


def test_retry_policy_backoff_caps_at_max_delay():
    policy = RetryPolicy(base_delay_s=1.0, backoff_factor=2.0, max_delay_s=5.0)
    assert policy.delay_s(1, None) == 1.0
    assert policy.delay_s(2, None) == 2.0
    assert policy.delay_s(3, None) == 4.0
    assert policy.delay_s(4, None) == 5.0  # capped
    assert policy.delay_s(10, None) == 5.0


def test_retry_policy_exhaustion_and_legacy_fixed():
    capped = RetryPolicy(max_attempts=3)
    assert not capped.exhausted(2)
    assert capped.exhausted(3)
    legacy = RetryPolicy.fixed(6.0)
    assert legacy.max_attempts is None
    assert not legacy.exhausted(10_000)
    assert legacy.delay_s(7, None) == 6.0  # fixed: no growth


def test_retry_policy_jitter_is_bounded_and_seed_deterministic():
    policy = RetryPolicy(base_delay_s=2.0, jitter_fraction=0.25)
    delays_a = [policy.delay_s(1, DeterministicRng(9)) for _ in range(1)]
    delays_b = [policy.delay_s(1, DeterministicRng(9)) for _ in range(1)]
    assert delays_a == delays_b
    rng = DeterministicRng(9)
    for _ in range(50):
        delay = policy.delay_s(1, rng)
        assert 1.5 <= delay <= 2.5


def test_player_config_effective_policy_defaults_to_legacy_fixed():
    config = PlayerConfig(retry_interval_s=3.0)
    policy = config.effective_retry_policy
    assert policy.max_attempts is None
    assert policy.base_delay_s == 3.0
    explicit = PlayerConfig(retry_policy=RetryPolicy(max_attempts=4))
    assert explicit.effective_retry_policy.max_attempts == 4


def test_service_specs_build_capped_policies():
    h5 = get_service("H5").player_config()
    assert h5.effective_retry_policy.base_delay_s == 6.0
    assert h5.effective_retry_policy.max_attempts == 10
    h1 = get_service("H1").player_config()
    assert h1.effective_retry_policy.backoff_factor == 2.0
    assert h1.degradation.downswitch_on_failure
    s2 = get_service("S2").player_config()
    assert s2.degradation.skip_failed_segments


# ---------------------------------------------------------------------------
# Degradation behaviours end-to-end
# ---------------------------------------------------------------------------


def _strict_config(name, **retry_kwargs):
    """Service config with a tight budget and no degradation."""
    base = get_service(name).player_config()
    return replace(
        base,
        retry_policy=RetryPolicy(**retry_kwargs),
        degradation=DegradationPolicy(),
    )


def test_exhausted_budget_ends_session_with_download_failed():
    # Media errors from t=6 onward; 3 attempts 0.5 s apart burn out fast.
    faults = FaultSpec(error_bursts=(ErrorBurst(start_s=6.0, end_s=300.0),))
    result = run_session(
        "H1",
        ConstantSchedule(mbps(3)),
        duration_s=120.0,
        player_config=_strict_config("H1", max_attempts=3, base_delay_s=0.5),
        faults=faults,
    )
    assert result.player_state is PlayerState.ENDED
    ended = result.events.of_type(SessionEnded)
    assert ended and ended[-1].reason == "download failed"
    gave_up = [e for e in result.events.of_type(DownloadFailed) if e.gave_up]
    assert len(gave_up) == 1
    assert gave_up[0].attempts == 3


def test_unbounded_legacy_policy_never_gives_up():
    faults = FaultSpec(error_bursts=(ErrorBurst(start_s=6.0, end_s=300.0),))
    config = replace(
        get_service("H1").player_config(),
        retry_policy=None,  # fall back to legacy fixed-interval behaviour
        degradation=DegradationPolicy(),
    )
    result = run_session(
        "H1",
        ConstantSchedule(mbps(3)),
        duration_s=60.0,
        player_config=config,
        faults=faults,
    )
    assert result.player_state is not PlayerState.ENDED
    assert not any(e.gave_up for e in result.events.of_type(DownloadFailed))


def test_skip_failed_segments_jumps_playhead_and_keeps_playing():
    faults = FaultSpec(error_bursts=(ErrorBurst(start_s=10.0, end_s=14.0),))
    base = get_service("S2").player_config()
    config = replace(
        base,
        retry_policy=RetryPolicy(max_attempts=2, base_delay_s=1.0),
        degradation=DegradationPolicy(skip_failed_segments=True),
    )
    result = run_session(
        "S2",
        ConstantSchedule(mbps(2.5)),
        duration_s=90.0,
        player_config=config,
        faults=faults,
    )
    skips = result.events.of_type(SegmentSkipped)
    assert skips, "the failed segment should be skipped, not fatal"
    for skip in skips:
        assert skip.to_position_s > skip.from_position_s
    # The session must not die of "download failed": it either keeps
    # playing or reaches the natural end of the (shortened) content.
    assert result.player_state is not PlayerState.ENDED or (
        result.events.of_type(SessionEnded)[-1].reason == "content finished"
    )


def test_downswitch_on_failure_retries_at_lower_level():
    faults = FaultSpec(seeded_errors=(SeededErrors(rate=0.25, seed=3),))
    base = get_service("H1").player_config()
    config = replace(
        base,
        retry_policy=RetryPolicy(max_attempts=8, base_delay_s=0.5),
        degradation=DegradationPolicy(downswitch_on_failure=True),
    )
    result = run_session(
        "H1",
        ConstantSchedule(mbps(4)),
        duration_s=90.0,
        player_config=config,
        faults=faults,
    )
    assert result.events.of_type(DownloadFailed)
    assert result.playback_started
    assert result.player_state is not PlayerState.ENDED or (
        result.events.of_type(SessionEnded)[-1].reason == "content finished"
    )


def test_request_timeout_aborts_stalled_transfer():
    # Dead air freezes an in-flight segment; the timeout must abort and
    # count it as a failed attempt instead of waiting out the window.
    faults = FaultSpec(dead_air=(DeadAirWindow(6.0, 20.0),))
    config = replace(
        get_service("H1").player_config(),
        retry_policy=RetryPolicy(
            max_attempts=20, base_delay_s=0.5, backoff_factor=2.0,
            request_timeout_s=2.0,
        ),
    )
    result = run_session(
        "H1",
        ConstantSchedule(mbps(3)),
        duration_s=60.0,
        player_config=config,
        faults=faults,
    )
    failed = result.events.of_type(DownloadFailed)
    assert failed, "the stalled transfer should be aborted by the timeout"
    aborted = [flow for flow in result.proxy.flows if flow.aborted]
    assert aborted
    # Every abort happened ~request_timeout_s after its request started.
    for flow in aborted:
        assert flow.completed_at - flow.started_at <= 2.0 + 0.2


def test_manifest_outage_exhaustion_ends_session():
    faults = FaultSpec(
        error_bursts=(
            ErrorBurst(start_s=0.0, end_s=600.0, kinds=(ContentKind.MANIFEST,)),
        )
    )
    result = run_session(
        "H1",
        ConstantSchedule(mbps(3)),
        duration_s=120.0,
        player_config=_strict_config("H1", max_attempts=3, base_delay_s=0.5),
        faults=faults,
    )
    assert result.player_state is PlayerState.ENDED
    assert result.events.of_type(SessionEnded)[-1].reason == "manifest unavailable"
    assert not result.playback_started


def test_fixed_long_retry_stalls_longer_than_backoff():
    """The paper's root cause: H5's fixed 6 s interval vs capped backoff.

    Same service, same fault, same network — only the retry policy
    differs.  The fixed-interval player waits out its full interval
    with an empty buffer while the backoff player retries quickly.
    """
    base = get_service("H5").player_config()
    fixed_policy = RetryPolicy.fixed(6.0)
    backoff_policy = RetryPolicy(
        max_attempts=12, base_delay_s=0.5, backoff_factor=2.0, max_delay_s=8.0
    )

    # A media-error burst at startup delays first frame by the retry lag.
    burst = FaultSpec(error_bursts=(ErrorBurst(start_s=0.0, end_s=2.0),))
    schedule = ConstantSchedule(mbps(2.5))
    fixed = run_session(
        "H5", schedule, duration_s=60.0,
        player_config=replace(base, retry_policy=fixed_policy), faults=burst,
    )
    backoff = run_session(
        "H5", schedule, duration_s=60.0,
        player_config=replace(base, retry_policy=backoff_policy), faults=burst,
    )
    assert fixed.true_startup_delay_s > backoff.true_startup_delay_s + 2.0

    # Mid-run connection resets on a cellular profile: the fixed player
    # sits out 6 s with a draining buffer after every abort and stalls.
    storm = FaultSpec(reset_times=(18.0, 27.0, 36.0))
    def storm_run(policy):
        spec = RunSpec(
            service="H5", profile_id=9, duration_s=60.0,
            config_overrides=(("retry_policy", policy),), faults=storm,
        )
        return execute_run_spec_with_result(spec)[1]

    fixed_storm = storm_run(fixed_policy)
    backoff_storm = storm_run(backoff_policy)
    assert fixed_storm.true_stall_s > backoff_storm.true_stall_s + 3.0


# ---------------------------------------------------------------------------
# The resilience sweep
# ---------------------------------------------------------------------------


def test_standard_scenarios_are_well_formed():
    scenarios = standard_fault_scenarios(120.0)
    names = [scenario.name for scenario in scenarios]
    assert len(names) == len(set(names))
    assert "baseline" in names
    baseline = next(s for s in scenarios if s.name == "baseline")
    assert baseline.faults is None
    for scenario in scenarios:
        if scenario.faults is not None:
            assert (
                scenario.faults.has_origin_faults
                or scenario.faults.has_transport_faults
            )


def test_sweep_reproducible_across_workers_and_fast_forward():
    scenarios = [
        s for s in standard_fault_scenarios(40.0)
        if s.name in ("baseline", "reset-storm")
    ]
    serial = run_resilience_sweep(
        ["H5", "S2"], scenarios, profile_id=9, duration_s=40.0, workers=0
    )
    parallel = run_resilience_sweep(
        ["H5", "S2"], scenarios, profile_id=9, duration_s=40.0, workers=2
    )
    assert serial == parallel
    no_ff = run_resilience_sweep(
        ["H5", "S2"], scenarios, profile_id=9, duration_s=40.0,
        workers=0, fast_forward=False,
    )
    assert no_ff.cells == serial.cells


def test_sweep_report_shape_and_json():
    scenarios = [
        s for s in standard_fault_scenarios(40.0) if s.name == "baseline"
    ]
    report = run_resilience_sweep(
        ["H1"], scenarios, profile_id=9, duration_s=40.0
    )
    assert len(report.cells) == 1
    cell = report.cell("H1", "baseline")
    assert cell.download_failures == 0
    assert cell.final_state == "playing"
    payload = report.to_json()
    assert payload["cells"][0]["service"] == "H1"
    rendered = report.render()
    assert "H1" in rendered and "baseline" in rendered
