"""HLS playlist generation and parsing round-trips."""

import pytest

from repro.manifest import (
    ManifestError,
    Protocol,
    parse_any_manifest,
    parse_master_playlist,
    parse_media_playlist,
)
from repro.manifest.hls import HlsBuilder, _parse_attribute_list


@pytest.fixture(scope="module")
def builder(small_asset_module):
    return HlsBuilder(base_url="https://cdn.test", asset=small_asset_module)


@pytest.fixture(scope="session")
def small_asset_module(small_asset):
    return small_asset


class TestAttributeList:
    def test_simple(self):
        assert _parse_attribute_list("A=1,B=2") == {"A": "1", "B": "2"}

    def test_quoted_comma(self):
        attrs = _parse_attribute_list('CODECS="avc1,mp4a",BANDWIDTH=5')
        assert attrs["CODECS"] == "avc1,mp4a"
        assert attrs["BANDWIDTH"] == "5"


class TestRoundTrip:
    def test_master_round_trip(self, builder, small_asset_module):
        manifest = parse_master_playlist(builder.master_playlist(),
                                         builder.master_url)
        assert manifest.protocol is Protocol.HLS
        assert len(manifest.video_tracks) == len(small_asset_module.video_tracks)
        declared = [t.declared_bitrate_bps for t in manifest.video_tracks]
        expected = [t.declared_bitrate_bps for t in small_asset_module.video_tracks]
        assert declared == pytest.approx(expected, abs=1.0)

    def test_master_carries_average_bandwidth(self, builder):
        manifest = parse_master_playlist(builder.master_playlist(),
                                         builder.master_url)
        for track in manifest.video_tracks:
            assert track.average_bandwidth_bps is not None
            assert track.average_bandwidth_bps < track.declared_bitrate_bps

    def test_master_levels_ascending(self, builder):
        manifest = parse_master_playlist(builder.master_playlist(),
                                         builder.master_url)
        assert [t.level for t in manifest.video_tracks] == [0, 1, 2]

    def test_master_resolution(self, builder):
        manifest = parse_master_playlist(builder.master_playlist(),
                                         builder.master_url)
        assert manifest.video_tracks[-1].height == 720

    def test_media_playlist_round_trip(self, builder, small_asset_module):
        track = small_asset_module.video_tracks[0]
        segments = parse_media_playlist(
            builder.media_playlist(track), builder.media_playlist_url(track)
        )
        assert len(segments) == track.segment_count
        assert segments[0].url == builder.segment_url(track, 0)
        total = sum(seg.duration_s for seg in segments)
        assert total == pytest.approx(track.duration_s, abs=0.01)

    def test_media_playlist_segments_have_no_sizes(self, builder,
                                                   small_asset_module):
        track = small_asset_module.video_tracks[0]
        segments = parse_media_playlist(
            builder.media_playlist(track), builder.media_playlist_url(track)
        )
        assert all(seg.size_bytes is None for seg in segments)

    def test_parse_any_detects_hls(self, builder):
        manifest = parse_any_manifest(builder.master_playlist(),
                                      builder.master_url)
        assert manifest.protocol is Protocol.HLS


class TestErrors:
    def test_not_a_playlist(self):
        with pytest.raises(ManifestError):
            parse_master_playlist("hello", "u")

    def test_variant_without_stream_inf(self):
        text = "#EXTM3U\nvariant.m3u8\n"
        with pytest.raises(ManifestError, match="without #EXT-X-STREAM-INF"):
            parse_master_playlist(text, "u")

    def test_missing_bandwidth(self):
        text = "#EXTM3U\n#EXT-X-STREAM-INF:RESOLUTION=1x1\nv.m3u8\n"
        with pytest.raises(ManifestError, match="BANDWIDTH"):
            parse_master_playlist(text, "u")

    def test_empty_master(self):
        with pytest.raises(ManifestError, match="no variants"):
            parse_master_playlist("#EXTM3U\n", "u")

    def test_media_playlist_segment_without_extinf(self):
        text = "#EXTM3U\nseg0.ts\n"
        with pytest.raises(ManifestError, match="without #EXTINF"):
            parse_media_playlist(text, "u")

    def test_empty_media_playlist(self):
        with pytest.raises(ManifestError, match="no segments"):
            parse_media_playlist("#EXTM3U\n#EXT-X-ENDLIST\n", "u")

    def test_parse_any_rejects_garbage(self):
        with pytest.raises(ManifestError):
            parse_any_manifest("random text", "u")


class TestUrlNamespace:
    def test_urls_are_distinct(self, builder, small_asset_module):
        urls = {builder.master_url}
        for track in small_asset_module.video_tracks:
            urls.add(builder.media_playlist_url(track))
            for segment in track.segments:
                urls.add(builder.segment_url(track, segment.index))
        expected = 1 + 3 + 3 * 30
        assert len(urls) == expected
