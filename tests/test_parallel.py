"""Sweep engine: parallel == serial, encode cache, idle fast-forward."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.core.experiment import ProfileRun, profile_sweep_specs
from repro.core.fleet import FleetSpec, run_fleet
from repro.core.run import execute
from repro.core.parallel import (
    RunSpec,
    SweepRunner,
    default_worker_count,
    execute_run_spec,
    parallel_map,
    sweep_grid,
)
from repro.core.session import Session
from tests.support import run_session
from repro.media.cache import AssetCache, asset_cache, clear_asset_cache
from repro.net.schedule import ConstantSchedule
from repro.net.traces import generate_trace
from repro.server.origin import OriginServer
from repro.services.profiles import build_service, get_service
from repro.util import mbps


# ---------------------------------------------------------------------------
# Serial vs parallel equality
# ---------------------------------------------------------------------------


def test_parallel_records_equal_serial_on_grid():
    """The ISSUE's acceptance grid: 3 services x 3 profiles, workers on/off."""
    specs = sweep_grid(["H1", "D2", "S2"], [1, 2, 3], duration_s=40.0)
    serial = SweepRunner(workers=0).run(specs)
    parallel = SweepRunner(workers=2).run(specs)
    assert serial == parallel
    assert [r.service_name for r in serial] == ["H1"] * 3 + ["D2"] * 3 + ["S2"] * 3
    assert [r.profile_id for r in serial] == [1, 2, 3] * 3


def test_sweep_grid_order_and_repetitions():
    specs = sweep_grid(["H1", "H2"], [4, 5], repetitions=2, duration_s=30.0)
    assert [(s.service, s.profile_id, s.repetition) for s in specs] == [
        ("H1", 4, 0), ("H1", 4, 1), ("H1", 5, 0), ("H1", 5, 1),
        ("H2", 4, 0), ("H2", 4, 1), ("H2", 5, 0), ("H2", 5, 1),
    ]
    # repetition shifts the default content seed
    assert specs[0].resolved_content_seed + 1 == specs[1].resolved_content_seed


def test_execute_run_spec_is_deterministic():
    spec = RunSpec(service="H4", profile_id=7, duration_s=40.0)
    assert execute_run_spec(spec) == execute_run_spec(spec)


def test_run_spec_config_overrides_apply():
    base = RunSpec(service="H2", profile_id=2, duration_s=60.0)
    tweaked = RunSpec(
        service="H2",
        profile_id=2,
        duration_s=60.0,
        config_overrides=(("startup_buffer_s", 2.0),),
    )
    record_base = execute_run_spec(base)
    record_tweaked = execute_run_spec(tweaked)
    assert record_tweaked.true_startup_delay_s < record_base.true_startup_delay_s


def test_parallel_map_orders_results():
    assert parallel_map(len, ["a", "bb", "ccc"], workers=2) == [1, 2, 3]
    assert parallel_map(len, ["a", "bb"], workers=0) == [1, 2]


def test_profile_sweep_parallel_matches_serial():
    profiles = [generate_trace(pid, 40) for pid in (1, 2, 3)]
    specs = profile_sweep_specs("S2", profiles, duration_s=40.0)
    serial = [
        ProfileRun.from_outcome(o)
        for o in execute(specs, workers=0, keep_results=True)
    ]
    parallel = [
        ProfileRun.from_outcome(o) for o in execute(specs, workers=2)
    ]
    assert [run.record for run in serial] == [run.record for run in parallel]
    # serial keeps the live session graph; parallel keeps only records
    assert all(run.result is not None for run in serial)
    assert all(run.result is None for run in parallel)
    assert [run.qoe for run in serial] == [run.qoe for run in parallel]


def test_default_worker_count_bounds():
    workers = default_worker_count()
    assert 0 <= workers <= 8


# ---------------------------------------------------------------------------
# Encode cache
# ---------------------------------------------------------------------------


def test_encode_cache_returns_identical_asset_for_identical_key():
    clear_asset_cache()
    spec = get_service("H3")
    first = spec.encode_asset(50.0, 21)
    second = spec.encode_asset(50.0, 21)
    assert first is second
    assert asset_cache().hits >= 1


def test_encode_cache_distinct_on_seed_change():
    spec = get_service("H3")
    assert spec.encode_asset(50.0, 21) is not spec.encode_asset(50.0, 22)


def test_encode_cache_distinct_on_duration_change():
    spec = get_service("H3")
    assert spec.encode_asset(50.0, 21) is not spec.encode_asset(60.0, 21)


def test_encode_cache_bypass_gives_equal_but_fresh_asset():
    spec = get_service("H3")
    cached = spec.encode_asset(50.0, 21)
    fresh = spec.encode_asset(50.0, 21, use_cache=False)
    assert fresh is not cached
    assert fresh == cached


def test_asset_cache_lru_eviction():
    cache = AssetCache(capacity=2)
    cache.get_or_encode("a", lambda: "A")
    cache.get_or_encode("b", lambda: "B")
    cache.get_or_encode("a", lambda: "A2")  # refresh a
    cache.get_or_encode("c", lambda: "C")  # evicts b
    assert cache.get_or_encode("a", lambda: "A3") == "A"
    assert cache.get_or_encode("b", lambda: "B2") == "B2"
    assert len(cache) == 2


# ---------------------------------------------------------------------------
# Idle-tick fast-forward
# ---------------------------------------------------------------------------


def _run_pair(name, schedule, duration_s, **kwargs):
    ticked = run_session(name, schedule, duration_s=duration_s, **kwargs)
    jumped = run_session(
        name, schedule, duration_s=duration_s, fast_forward=True, **kwargs
    )
    return ticked, jumped


def _assert_identical(ticked, jumped):
    assert jumped.qoe == ticked.qoe
    assert jumped.duration_s == ticked.duration_s
    assert jumped.player_state == ticked.player_state
    assert jumped.player.ui_samples == ticked.player.ui_samples
    assert jumped.events.events == ticked.events.events
    assert jumped.rrc.energy_j == ticked.rrc.energy_j
    assert jumped.rrc.time_in_state == ticked.rrc.time_in_state
    assert jumped.player.position_s == ticked.player.position_s


@pytest.mark.parametrize("name", ["H1", "H2", "H4", "D1", "D3", "S1", "S2"])
def test_fast_forward_invariant_over_cellular_trace(name):
    """Tick-by-tick equality for pausing, SR and buffer-guard services."""
    ticked, jumped = _run_pair(name, generate_trace(5, 120), 120.0)
    _assert_identical(ticked, jumped)


def test_fast_forward_actually_skips_ticks():
    server = OriginServer()
    built = build_service("H4", server, duration_s=180.0, content_seed=11)
    session = Session(
        built, server, ConstantSchedule(mbps(8)), fast_forward=True
    )
    result = session.run(180.0)
    assert result.qoe is not None
    # H4 pauses for 20 s stretches and fully buffers the 180 s content:
    # most of the session is provably idle.
    assert session.fast_forwarded_ticks > 600
    assert session.fast_forward_jumps >= 2


def test_fast_forward_invariant_on_fully_buffered_tail():
    schedule = ConstantSchedule(mbps(10))
    ticked, jumped = _run_pair(
        "H6", schedule, 240.0, content_duration_s=200.0
    )
    _assert_identical(ticked, jumped)


def test_fast_forward_off_by_default():
    server = OriginServer()
    built = build_service("H4", server, duration_s=60.0, content_seed=11)
    session = Session(built, server, ConstantSchedule(mbps(8)))
    session.run(60.0)
    assert session.fast_forwarded_ticks == 0


def test_shared_link_fast_forward_matches_ticked():
    schedule = ConstantSchedule(mbps(12))
    spec = FleetSpec(services=("H4", "S2"), schedule=schedule,
                     duration_s=90.0, content_duration_s=80.0, engine="tick")
    ticked = run_fleet(spec, keep_results=True).results
    jumped = run_fleet(
        replace(spec, fast_forward=True), keep_results=True
    ).results
    for a, b in zip(ticked, jumped):
        assert a.qoe == b.qoe
        assert a.player.ui_samples == b.player.ui_samples
        assert a.player.events.events == b.player.events.events
