"""Origin server tests: hosting, byte ranges, sidx bytes on the wire."""

import pytest

from repro.manifest import ManifestCipher, parse_sidx
from repro.net.http import HttpMethod, HttpRequest, HttpStatus
from repro.server import OriginServer


@pytest.fixture()
def server():
    return OriginServer()


class TestHlsHosting:
    def test_master_served_as_text(self, server, small_asset):
        hosting = server.host_hls(small_asset, "https://cdn.test")
        plan = server.handle(HttpRequest(url=hosting.manifest_url))
        assert plan.is_success
        assert plan.text is not None and plan.text.startswith("#EXTM3U")

    def test_segment_sizes_match(self, server, small_asset):
        hosting = server.host_hls(small_asset, "https://cdn.test")
        track = small_asset.video_tracks[1]
        url = hosting.builder.segment_url(track, 3)
        plan = server.handle(HttpRequest(url=url))
        assert plan.size_bytes == track.segment(3).size_bytes

    def test_head_sizing(self, server, small_asset):
        hosting = server.host_hls(small_asset, "https://cdn.test")
        track = small_asset.video_tracks[0]
        url = hosting.builder.segment_url(track, 0)
        assert server.content_length(url) == track.segment(0).size_bytes

    def test_unknown_url_404(self, server, small_asset):
        server.host_hls(small_asset, "https://cdn.test")
        plan = server.handle(HttpRequest(url="https://cdn.test/nope"))
        assert plan.status is HttpStatus.NOT_FOUND


class TestDashHosting:
    def test_sidx_bytes_parse_back(self, server, small_asset):
        hosting = server.host_dash(small_asset, "https://cdn.test")
        track = small_asset.video_tracks[0]
        url = hosting.builder.media_url(track)
        index_range = hosting.builder.index_byte_range(track)
        plan = server.handle(HttpRequest(url=url, byte_range=index_range))
        assert plan.data is not None
        sidx = parse_sidx(plan.data)
        assert [ref.referenced_size for ref in sidx.references] == \
            [seg.size_bytes for seg in track.segments]

    def test_media_range_sizes(self, server, small_asset):
        hosting = server.host_dash(small_asset, "https://cdn.test")
        track = small_asset.video_tracks[0]
        url = hosting.builder.media_url(track)
        byte_range = hosting.builder.byte_range_of(track, 5)
        plan = server.handle(HttpRequest(url=url, byte_range=byte_range))
        assert plan.status is HttpStatus.PARTIAL_CONTENT
        assert plan.size_bytes == track.segment(5).size_bytes

    def test_range_past_end_rejected(self, server, small_asset):
        hosting = server.host_dash(small_asset, "https://cdn.test")
        track = small_asset.video_tracks[0]
        url = hosting.builder.media_url(track)
        size = hosting.builder.media_file_size(track)
        plan = server.handle(HttpRequest(url=url, byte_range=(0, size)))
        assert not plan.is_success

    def test_encrypted_mpd(self, server, small_asset):
        cipher = ManifestCipher()
        hosting = server.host_dash(small_asset, "https://cdn.test",
                                   cipher=cipher)
        assert hosting.encrypted
        plan = server.handle(HttpRequest(url=hosting.manifest_url))
        assert ManifestCipher.is_encrypted(plan.text)
        assert "<MPD" in cipher.decrypt(plan.text)

    def test_audio_hosted(self, server, small_asset):
        hosting = server.host_dash(small_asset, "https://cdn.test")
        audio = small_asset.audio_tracks[0]
        assert server.has_resource(hosting.builder.media_url(audio))


class TestSmoothHosting:
    def test_manifest_and_fragments(self, server, small_asset):
        hosting = server.host_smooth(small_asset, "https://cdn.test")
        plan = server.handle(HttpRequest(url=hosting.manifest_url))
        assert "<SmoothStreamingMedia" in plan.text
        track = small_asset.video_tracks[0]
        url = hosting.builder.fragment_url(track, 2)
        plan = server.handle(HttpRequest(url=url))
        assert plan.size_bytes == track.segment(2).size_bytes

    def test_audio_fragments_hosted(self, server, small_asset):
        hosting = server.host_smooth(small_asset, "https://cdn.test")
        audio = small_asset.audio_tracks[0]
        url = hosting.builder.fragment_url(audio, 0)
        assert server.has_resource(url)


class TestServerMisc:
    def test_duplicate_hosting_rejected(self, server, small_asset):
        server.host_hls(small_asset, "https://cdn.test")
        with pytest.raises(ValueError, match="duplicate"):
            server.host_hls(small_asset, "https://cdn.test")

    def test_head_request(self, server, small_asset):
        hosting = server.host_hls(small_asset, "https://cdn.test")
        plan = server.handle(
            HttpRequest(url=hosting.manifest_url, method=HttpMethod.HEAD)
        )
        assert plan.is_success
        assert plan.size_bytes == 1  # headers only

    def test_replace_text_resource(self, server, small_asset):
        hosting = server.host_hls(small_asset, "https://cdn.test")
        server.replace_text_resource(hosting.manifest_url, "#EXTM3U\n")
        plan = server.handle(HttpRequest(url=hosting.manifest_url))
        assert plan.text == "#EXTM3U\n"
        with pytest.raises(KeyError):
            server.replace_text_resource("https://cdn.test/nope", "x")

    def test_content_length_unknown(self, server):
        with pytest.raises(KeyError):
            server.content_length("u")
