"""Sweep-fabric layer 4: the distributed coordinator/worker fabric.

Same contract as every fabric layer below it, one level up:
distribution changes *where* a lease executes — which host, over which
transport, after how many worker deaths — never what it produces.  So
every test here ends in the same assertion the supervisor tests end in:
the outcomes compare ``==`` to a clean ``workers=0`` in-process run.

Chaos mechanics differ from the supervisor tests: workers here are
in-process threads serving real loopback sockets (or spool
directories), so an injected task can sever the worker's active
channel to simulate a SIGKILL'd daemon without killing the test
process.  Subprocess workers are exercised by the CI smoke script
(``.github/scripts/distributed_smoke.py``), not here.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.core.distributed import (
    HandshakeRejected,
    SweepCoordinator,
    SweepWorker,
    TransportError,
    parse_host,
)
from repro.core.outcome_cache import lease_key
from repro.core.parallel import RunSpec
from repro.core.pool import close_worker_pool
from repro.core.run import execute
from repro.core.supervisor import (
    FailedOutcome,
    SweepJournal,
    SweepPolicy,
    _lease_task,
)

DURATION_S = 10.0


@pytest.fixture(autouse=True)
def _fresh_pool():
    close_worker_pool()
    yield
    close_worker_pool()


def _specs(profiles=(1, 5, 9)):
    return [
        RunSpec(
            service="H1",
            profile_id=profile_id,
            duration_s=DURATION_S,
            fast_forward=True,
        )
        for profile_id in profiles
    ]


_BASELINE: dict = {}


def _baseline(profiles=(1, 5, 9)):
    """The clean workers=0 oracle for a profile tuple, computed once."""
    if profiles not in _BASELINE:
        _BASELINE[profiles] = execute(_specs(profiles), workers=0)
    return _BASELINE[profiles]


# ---------------------------------------------------------------------------
# In-thread worker harness
# ---------------------------------------------------------------------------


class _LiveWorker:
    """A SweepWorker serving a real loopback socket from a thread."""

    def __init__(self, **kwargs):
        self.worker = SweepWorker(0, **kwargs)
        ready = threading.Event()
        self.thread = threading.Thread(
            target=self.worker.serve_socket,
            kwargs={"ready": ready},
            daemon=True,
        )
        self.thread.start()
        assert ready.wait(5.0), "worker never bound its socket"
        host, port = self.worker.address
        self.host = f"{host}:{port}"

    def stop(self):
        self.worker.stop()
        self.thread.join(5.0)


@pytest.fixture
def live_workers():
    started: list[_LiveWorker] = []

    def factory(count=1, **kwargs):
        fresh = [_LiveWorker(**kwargs) for _ in range(count)]
        started.extend(fresh)
        return fresh

    yield factory
    for worker in started:
        worker.stop()


# Chaos tasks run in the worker's serve thread (workers=0 shards execute
# in process), so plain module globals coordinate them.
_CHAOS: dict = {}


def _sever_channel_task(args):
    """Close the serving worker's channel on its first lease, once —
    the in-thread stand-in for a daemon SIGKILL'd mid-shard.  (Shard
    placement is racy, so the trigger is "first lease this worker
    runs", not a specific spec.)"""
    if not _CHAOS.get("tripped"):
        _CHAOS["tripped"] = True
        _CHAOS["victim"].active_channel.close()
    return _lease_task(args)


def _poison_task(args):
    """Fail deterministically on the poison spec."""
    spec, _ = args
    if spec.profile_id == 9:
        raise RuntimeError("poison spec")
    return _lease_task(args)


# ---------------------------------------------------------------------------
# Host specs and handshake
# ---------------------------------------------------------------------------


def test_parse_host_forms(tmp_path):
    assert parse_host("127.0.0.1:4800") == ("socket", ("127.0.0.1", 4800))
    kind, path = parse_host(f"spool:{tmp_path}")
    assert kind == "spool" and str(path) == str(tmp_path)
    for bad in ("localhost", "host:port", "spool:", ":4800"):
        with pytest.raises(ValueError):
            parse_host(bad)


def test_foreign_code_fingerprint_is_rejected(live_workers):
    (foreign,) = live_workers(1, fingerprint="f" * 16)
    coordinator = SweepCoordinator([foreign.host], connect_timeout_s=5.0)
    with pytest.raises(HandshakeRejected, match="fingerprint"):
        coordinator._handshake(foreign.host)
    # Through run(): the reject counts as unreachable, the sweep still
    # completes via the local fallback, identically.
    outcomes = coordinator.run(_specs())
    assert outcomes == _baseline()
    assert coordinator.stats.hosts_unreachable == 1
    assert coordinator.stats.local_fallback_leases == 3


# ---------------------------------------------------------------------------
# Transport equality: the distributed run IS the serial run
# ---------------------------------------------------------------------------


def test_two_socket_workers_match_serial(live_workers, tmp_path):
    workers = live_workers(2)
    journal = SweepJournal(tmp_path)
    coordinator = SweepCoordinator(
        [w.host for w in workers], journal=journal
    )
    outcomes = coordinator.run(_specs())
    assert outcomes == _baseline()
    assert coordinator.stats.leases_completed == 3
    assert coordinator.stats.worker_deaths == 0
    # Every lease landed in the journal with its executing host label.
    lines = [
        json.loads(line)
        for line in (tmp_path / "journal.jsonl").read_text().splitlines()
    ]
    assert {entry["spec_sha"] for entry in lines} == {
        lease_key(spec) for spec in _specs()
    }
    assert all(entry["host"] for entry in lines)
    # And the journal's outcome store replays them without the fleet.
    resumed = SweepCoordinator(
        [w.host for w in workers], journal=SweepJournal(tmp_path)
    )
    assert resumed.run(_specs()) == _baseline()
    assert resumed.stats.leases_sent == 0


def test_spool_worker_matches_serial(tmp_path):
    spool = tmp_path / "spool"
    worker = SweepWorker(0, label="spool-1")
    thread = threading.Thread(
        target=worker.serve_spool, args=(spool,), daemon=True
    )
    thread.start()
    try:
        coordinator = SweepCoordinator([f"spool:{spool}"])
        assert coordinator.run(_specs()) == _baseline()
        assert coordinator.stats.leases_completed == 3
    finally:
        worker.stop()
        thread.join(5.0)


def test_execute_hosts_matches_serial_and_fills_cache(
    live_workers, tmp_path
):
    (worker,) = live_workers(1)
    outcomes = execute(
        _specs(), hosts=[worker.host], cache=tmp_path / "cache"
    )
    assert outcomes == _baseline()
    # The putback ran: a second execute() is pure cache, no dispatch.
    cached = execute(
        _specs(), hosts=["127.0.0.1:1"], cache=tmp_path / "cache"
    )
    assert cached == _baseline()


def test_execute_refuses_keep_results_with_hosts():
    with pytest.raises(ValueError, match="keep_results"):
        execute(_specs(profiles=(5,)), hosts=["127.0.0.1:1"],
                keep_results=True)


# ---------------------------------------------------------------------------
# Failure semantics
# ---------------------------------------------------------------------------


def test_dead_worker_leases_redispatch_to_survivor(live_workers, tmp_path):
    _CHAOS.clear()
    victim = live_workers(1, task=_sever_channel_task)[0]
    _CHAOS["victim"] = victim.worker
    survivor = live_workers(1)[0]
    journal = SweepJournal(tmp_path)
    coordinator = SweepCoordinator(
        [victim.host, survivor.host], journal=journal, io_timeout_s=30.0
    )
    outcomes = coordinator.run(_specs())
    assert outcomes == _baseline()
    assert _CHAOS["tripped"], "the chaos task never saw the poison spec"
    assert coordinator.stats.worker_deaths == 1
    assert coordinator.stats.redispatched_leases >= 1
    assert coordinator.stats.local_fallback_leases == 0
    # The journal holds every lease exactly once despite the death.
    assert set(SweepJournal(tmp_path).entries()) == {
        lease_key(spec) for spec in _specs()
    }


def test_all_workers_unreachable_degrades_to_local(tmp_path):
    journal = SweepJournal(tmp_path)
    coordinator = SweepCoordinator(
        ["127.0.0.1:1", "127.0.0.1:2"],
        journal=journal,
        connect_timeout_s=0.5,
    )
    outcomes = coordinator.run(_specs())
    assert outcomes == _baseline()
    assert coordinator.stats.hosts_unreachable == 2
    assert coordinator.stats.local_fallback_leases == 3
    # The fallback journals too: a later distributed attempt resumes.
    resumed = SweepCoordinator(
        ["127.0.0.1:1"], journal=SweepJournal(tmp_path),
        connect_timeout_s=0.5,
    )
    assert resumed.run(_specs()) == _baseline()
    assert resumed.stats.local_fallback_leases == 0


def test_remote_quarantine_comes_back_typed(live_workers, tmp_path):
    (worker,) = live_workers(
        1, task=_poison_task, label="poison-host"
    )
    journal = SweepJournal(tmp_path)
    coordinator = SweepCoordinator(
        [worker.host],
        policy=SweepPolicy(max_attempts=2, quarantine=True),
        journal=journal,
    )
    outcomes = coordinator.run(_specs())
    clean = [o for o in outcomes if not isinstance(o, FailedOutcome)]
    failed = [o for o in outcomes if isinstance(o, FailedOutcome)]
    assert clean == [
        o for o in _baseline() if o.spec.profile_id != 9
    ]
    assert len(failed) == 1
    assert failed[0].attempts == 2
    entry = SweepJournal(tmp_path).completed(lease_key(failed[0].spec))
    assert entry["status"] == "quarantined"
    assert entry["host"] == "poison-host"


def test_remote_failure_without_quarantine_raises(live_workers):
    (worker,) = live_workers(1, task=_poison_task)
    coordinator = SweepCoordinator([worker.host])
    with pytest.raises(RuntimeError, match="poison spec"):
        coordinator.run(_specs())


def test_oversized_frame_is_a_transport_error():
    import socket as socket_module
    import struct

    from repro.core.distributed import MAX_FRAME_BYTES, SocketChannel

    left, right = socket_module.socketpair()
    try:
        left.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
        with pytest.raises(TransportError, match="oversized"):
            SocketChannel(right).recv(timeout=5.0)
    finally:
        left.close()
        right.close()
