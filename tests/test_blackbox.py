"""Black-box probes must recover the configured designs (Table 1)."""

import pytest

from repro.blackbox import (
    probe_convergence,
    probe_download_thresholds,
    probe_startup_buffer,
    probe_step_response,
    run_variant_experiment,
)
from repro.services import exoplayer_config, get_service
from repro.services.exoplayer import testcard_dash_spec as make_testcard_spec
from repro.util import kbps, mbps


class TestStartupProbe:
    @pytest.mark.parametrize("name", ["H1", "H3", "D1", "S2"])
    def test_recovers_startup_design(self, name):
        spec = get_service(name)
        probe = probe_startup_buffer(name, wait_s=40.0,
                                     content_duration_s=150.0)
        assert probe.startup_segments == spec.startup_segments
        assert probe.startup_buffer_s == pytest.approx(
            spec.startup_segments * spec.segment_duration_s, abs=0.5
        )
        assert probe.startup_track_declared_bps == pytest.approx(
            kbps(spec.startup_bitrate_kbps), rel=0.01
        )

    def test_probe_gives_up(self):
        # Block everything: the probe must raise, not loop forever.
        with pytest.raises(RuntimeError, match="did not start"):
            probe_startup_buffer("S1", max_segments=2, wait_s=15.0,
                                 content_duration_s=60.0)


class TestThresholdProbe:
    @pytest.mark.parametrize("name,tolerance", [("H1", 8.0), ("S2", 6.0)])
    def test_recovers_thresholds(self, name, tolerance):
        spec = get_service(name)
        probe = probe_download_thresholds(name, duration_s=360.0)
        assert probe.cycle_count >= 3
        assert probe.pausing_threshold_s == pytest.approx(
            spec.pausing_threshold_s, abs=tolerance
        )
        assert probe.resuming_threshold_s == pytest.approx(
            spec.resuming_threshold_s, abs=tolerance
        )
        assert probe.gap_s is not None


class TestConvergenceProbe:
    def test_stable_services_converge(self):
        probe = probe_convergence("H1", mbps(2.0), duration_s=240.0)
        assert probe.stable
        assert probe.aggressiveness is not None
        assert probe.aggressiveness <= 0.75 + 1e-9

    def test_d1_unstable(self):
        probe = probe_convergence("D1", kbps(500), duration_s=300.0)
        assert not probe.stable
        assert probe.steady_switches >= 4

    def test_d2_most_conservative(self):
        d2 = probe_convergence("D2", mbps(2.0), duration_s=240.0)
        assert d2.aggressiveness <= 0.5 + 1e-9

    def test_aggressive_service_above_conservative(self):
        aggressive = probe_convergence("D3", mbps(2.0), duration_s=240.0)
        conservative = probe_convergence("D2", mbps(2.0), duration_s=240.0)
        assert aggressive.aggressiveness > conservative.aggressiveness


class TestStepProbe:
    def test_immediate_downswitch_without_guard(self):
        # H4 has a 155 s pause threshold and no buffer guard.
        probe = probe_step_response("H4", high_bps=mbps(5), low_bps=kbps(500),
                                    step_at_s=120.0, duration_s=300.0)
        assert probe.downswitch_at is not None
        assert probe.immediate_downswitch
        assert probe.buffer_at_downswitch_s > 60.0

    def test_guarded_service_defers(self):
        # S1 holds its track until the buffer drains to ~50 s.  The high
        # phase must be long and fast enough to actually build a large
        # buffer first (S1's top track runs near 4.4 Mbps).
        probe = probe_step_response("S1", high_bps=mbps(10), low_bps=kbps(500),
                                    step_at_s=240.0, duration_s=600.0)
        assert probe.downswitch_at is not None
        assert not probe.immediate_downswitch
        # The switch happens once the buffer has drained to the vicinity
        # of the 50 s guard.  Each 2 s segment of S1's held track takes
        # ~16 s to fetch over the degraded link, so the measured buffer
        # can undershoot the threshold by roughly one decision interval.
        spec = get_service("S1")
        assert 10.0 < probe.decrease_buffer_threshold_estimate_s < \
            spec.decrease_buffer_threshold_s + 10.0


class TestVariantExperiment:
    def test_d2_ignores_actual_bitrate(self):
        experiment = run_variant_experiment(
            "D2", (mbps(1.6), mbps(3.2)), duration_s=160.0, warmup_s=70.0
        )
        assert experiment.ignores_actual_bitrate

    def test_actual_aware_player_detected(self):
        experiment = run_variant_experiment(
            make_testcard_spec(4.0), (mbps(0.9), mbps(1.4), mbps(2.0)),
            duration_s=160.0, warmup_s=70.0,
            player_config=exoplayer_config(use_actual=True),
        )
        assert not experiment.ignores_actual_bitrate

    def test_pair_lookup(self):
        experiment = run_variant_experiment(
            "D2", (mbps(1.6),), duration_s=120.0, warmup_s=60.0
        )
        shifted, dropped = experiment.pair(mbps(1.6))
        assert shifted.variant == "shifted"
        assert dropped.variant == "dropped"
