"""Unit tests for the observability plane (repro.obs).

Covers the metrics registry (counters / gauges / histograms with
labels, snapshot merging), the trace sinks (ring buffer, JSONL) and
their pickling behaviour, the trace config resolution, the phase
profiler, and the rendering helpers.
"""

from __future__ import annotations

import json
import pickle

import pytest

from repro.obs import (
    EMPTY_SNAPSHOT,
    AbrDecision,
    DownloadSpan,
    FfJump,
    JsonlTracer,
    MetricsRegistry,
    MetricsSnapshot,
    NULL_TRACER,
    Observability,
    PhaseProfiler,
    RebufferSpan,
    RingBufferTracer,
    TraceConfig,
    Tracer,
    event_to_dict,
    render_timeline,
    semantic_trace,
    write_jsonl,
)


# ---------------------------------------------------------------------------
# Metrics registry
# ---------------------------------------------------------------------------


def test_counter_labels_get_or_create():
    registry = MetricsRegistry()
    registry.counter("downloads", stream="video").inc(3)
    registry.counter("downloads", stream="video").inc(2)
    registry.counter("downloads", stream="audio").inc()
    snapshot = registry.snapshot()
    assert snapshot.value("downloads", stream="video") == 5
    assert snapshot.value("downloads", stream="audio") == 1
    assert snapshot.total("downloads") == 6


def test_counter_rejects_negative():
    registry = MetricsRegistry()
    with pytest.raises(ValueError):
        registry.counter("x").inc(-1)


def test_gauge_set_and_add():
    registry = MetricsRegistry()
    gauge = registry.gauge("position_s")
    gauge.set(10.0)
    gauge.add(2.5)
    assert registry.snapshot().value("position_s") == 12.5


def _histogram_row(snapshot, name):
    for row in snapshot.histograms:
        if row[0] == name:
            return row
    raise KeyError(name)


def test_histogram_buckets_and_overflow():
    registry = MetricsRegistry()
    hist = registry.histogram("dur", buckets=(1.0, 5.0))
    for value in (0.5, 0.9, 3.0, 100.0):
        hist.observe(value)
    _, _, bounds, counts, total, count = _histogram_row(
        registry.snapshot(), "dur"
    )
    assert count == 4
    assert total == pytest.approx(104.4)
    assert bounds == (1.0, 5.0)
    # Two below 1.0, one in [1.0, 5.0), one overflow.
    assert counts == (2, 1, 1)


def test_snapshot_merge_sums_counters_and_histograms():
    a = MetricsRegistry()
    a.counter("runs").inc()
    a.histogram("dur", buckets=(1.0,)).observe(0.5)
    b = MetricsRegistry()
    b.counter("runs").inc(2)
    b.histogram("dur", buckets=(1.0,)).observe(2.0)
    merged = MetricsSnapshot.merge([a.snapshot(), b.snapshot()])
    assert merged.value("runs") == 3
    _, _, _, counts, total, count = _histogram_row(merged, "dur")
    assert count == 2
    assert counts == (1, 1)
    assert total == pytest.approx(2.5)
    assert merged == MetricsSnapshot.merge([merged])


def test_snapshot_merge_empty_is_empty():
    assert MetricsSnapshot.merge([]) == EMPTY_SNAPSHOT


def test_snapshot_json_roundtrip(tmp_path):
    registry = MetricsRegistry()
    registry.counter("runs", service="H1").inc(4)
    registry.gauge("pos").set(1.25)
    path = tmp_path / "metrics.json"
    registry.snapshot().write_json(str(path))
    payload = json.loads(path.read_text())
    assert isinstance(payload, dict)
    text = json.dumps(payload)
    assert "runs" in text and "H1" in text


def test_snapshot_is_picklable_and_stable():
    registry = MetricsRegistry()
    registry.counter("runs").inc()
    snapshot = registry.snapshot()
    assert pickle.loads(pickle.dumps(snapshot)) == snapshot


# ---------------------------------------------------------------------------
# Trace sinks
# ---------------------------------------------------------------------------


def _event(at=1.0):
    return DownloadSpan(
        at=at, job="segment", stream="video", index=0, level=2,
        start_s=at - 0.5, end_s=at, size_bytes=1000, success=True,
    )


def test_null_tracer_is_disabled():
    assert NULL_TRACER.enabled is False
    assert NULL_TRACER.events() == ()
    assert isinstance(NULL_TRACER, Tracer)


def test_ring_buffer_capacity_evicts_oldest():
    tracer = RingBufferTracer(capacity=2)
    for i in range(4):
        tracer.emit(_event(at=float(i)))
    assert len(tracer) == 2
    assert [e.at for e in tracer.events()] == [2.0, 3.0]


def test_ring_buffer_kind_filter():
    tracer = RingBufferTracer(kinds=("rebuffer",))
    tracer.emit(_event())
    tracer.emit(RebufferSpan(at=2.0, start_s=1.0, end_s=2.0, position_s=5.0))
    assert [e.kind for e in tracer.events()] == ["rebuffer"]


def test_ring_buffer_pickles_with_events():
    tracer = RingBufferTracer()
    tracer.emit(_event())
    clone = pickle.loads(pickle.dumps(tracer))
    assert clone.events() == tracer.events()


def test_jsonl_tracer_writes_lines_and_pickles(tmp_path):
    path = tmp_path / "trace.jsonl"
    tracer = JsonlTracer(str(path), keep_events=True)
    tracer.emit(_event(at=1.0))
    tracer.emit(_event(at=2.0))
    tracer.close()
    lines = path.read_text().strip().splitlines()
    assert len(lines) == 2
    assert json.loads(lines[0])["kind"] == "download"
    assert len(tracer.events()) == 2
    # The file handle is dropped from pickled state.
    clone = pickle.loads(pickle.dumps(tracer))
    assert clone._handle is None
    assert clone.events() == tracer.events()


def test_write_jsonl_helper(tmp_path):
    path = tmp_path / "out.jsonl"
    count = write_jsonl([_event(), _event(at=2.0)], str(path))
    assert count == 2
    assert len(path.read_text().strip().splitlines()) == 2


def test_trace_config_validation():
    with pytest.raises(ValueError):
        TraceConfig(sink="bogus")
    with pytest.raises(ValueError):
        TraceConfig(sink="jsonl")  # needs a path


def test_trace_config_creates_sinks(tmp_path):
    ring = TraceConfig(capacity=5).create()
    assert isinstance(ring, RingBufferTracer)
    assert ring.capacity == 5
    jsonl = TraceConfig(
        sink="jsonl", path=str(tmp_path / "{service}-{profile}-{repetition}.jsonl")
    ).create(service="H1", profile_id=9, repetition=2)
    assert isinstance(jsonl, JsonlTracer)
    assert jsonl.path.endswith("H1-9-2.jsonl")


def test_event_to_dict_carries_kind():
    payload = event_to_dict(_event())
    assert payload["kind"] == "download"
    assert payload["size_bytes"] == 1000


# ---------------------------------------------------------------------------
# Semantic trace + rendering
# ---------------------------------------------------------------------------


def test_semantic_trace_drops_meta_and_numbers_per_kind():
    events = (
        _event(at=1.0),
        FfJump(at=1.5, layer="idle", ticks=100, end_s=11.5),
        _event(at=12.0),
        RebufferSpan(at=13.0, start_s=12.5, end_s=13.0, position_s=6.0),
    )
    semantic = semantic_trace(events)
    assert [sid for sid, _ in semantic] == [
        "download-1", "download-2", "rebuffer-1",
    ]
    assert all(event.kind != "ff_jump" for _, event in semantic)


def test_render_timeline_formats_each_kind():
    events = (
        _event(at=1.0),
        AbrDecision(at=1.0, index=3, level=2, previous_level=1,
                    buffer_s=8.0, estimate_bps=4e6),
        RebufferSpan(at=2.0, start_s=1.5, end_s=2.0, position_s=4.0),
        FfJump(at=3.0, layer="transfer", ticks=50, end_s=8.0),
    )
    text = render_timeline(events)
    assert "download" in text
    assert "segment 3 -> L2" in text
    assert "stall" in text
    assert "ff_jump" in text and "[transfer]" in text


# ---------------------------------------------------------------------------
# Profiler + plane
# ---------------------------------------------------------------------------


def test_phase_profiler_accumulates():
    profiler = PhaseProfiler()
    profiler.add("network", 0.5, calls=10)
    profiler.add("network", 0.25, calls=5)
    with profiler.time("player"):
        pass
    stats = {stat.phase: stat for stat in profiler.snapshot()}
    assert stats["network"].wall_s == pytest.approx(0.75)
    assert stats["network"].calls == 15
    assert stats["player"].calls == 1
    assert "network" in profiler.render()


def test_observability_create_variants(tmp_path):
    disabled = Observability.create(None)
    assert disabled.tracer is NULL_TRACER
    assert disabled.profiler is None
    ring = Observability.create(True)
    assert isinstance(ring.tracer, RingBufferTracer)
    jsonl = Observability.create(
        TraceConfig(sink="jsonl", path=str(tmp_path / "t.jsonl")),
        profile=True,
    )
    assert isinstance(jsonl.tracer, JsonlTracer)
    assert jsonl.profiler is not None
