"""Shared fixtures: short sessions, cached results, tiny media assets."""

from __future__ import annotations

import pytest

from tests.support import run_session
from repro.media.content import VideoContent
from repro.media.encoder import (
    DeclaredBitratePolicy,
    Encoder,
    EncoderSettings,
    EncodingMode,
    LadderRung,
)
from repro.media.track import MediaAsset
from repro.net.schedule import ConstantSchedule
from repro.net.traces import cellular_profiles
from repro.util import kbps, mbps


@pytest.fixture(scope="session")
def profiles_300():
    """The 14 cellular profiles at 300 s (shared, expensive to rebuild)."""
    return cellular_profiles(300)


@pytest.fixture(scope="session")
def content_120():
    return VideoContent.generate("unit-test-content", 120.0, seed=99)


@pytest.fixture(scope="session")
def small_asset(content_120) -> MediaAsset:
    """A 120 s, 3-track VBR asset with separate audio."""
    encoder = Encoder(
        EncoderSettings(
            segment_duration_s=4.0,
            mode=EncodingMode.VBR,
            declared_policy=DeclaredBitratePolicy.PEAK,
            seed=5,
        )
    )
    ladder = [
        LadderRung(kbps(300), 270),
        LadderRung(kbps(800), 480),
        LadderRung(kbps(2000), 720),
    ]
    video = encoder.encode_ladder(content_120, ladder)
    audio = (encoder.encode_audio(content_120, kbps(64), 4.0),)
    return MediaAsset(
        asset_id="unit-test-content", video_tracks=video, audio_tracks=audio
    )


@pytest.fixture(scope="session")
def cbr_asset(content_120) -> MediaAsset:
    encoder = Encoder(
        EncoderSettings(
            segment_duration_s=4.0,
            mode=EncodingMode.CBR,
            seed=5,
        )
    )
    ladder = [LadderRung(kbps(500), 360), LadderRung(kbps(1500), 720)]
    return MediaAsset(
        asset_id="unit-test-content",
        video_tracks=encoder.encode_ladder(content_120, ladder),
    )


def quick_session(name_or_spec, rate_mbps=4.0, duration_s=90.0, **kwargs):
    """A short session against a constant-rate link."""
    kwargs.setdefault("content_duration_s", duration_s)
    return run_session(
        name_or_spec,
        ConstantSchedule(mbps(rate_mbps)),
        duration_s=duration_s,
        **kwargs,
    )


# Cached full-service sessions reused by several test modules.

@pytest.fixture(scope="session")
def h1_session():
    return quick_session("H1", rate_mbps=4.0, duration_s=120.0)


@pytest.fixture(scope="session")
def d1_session():
    return quick_session("D1", rate_mbps=2.0, duration_s=120.0)


@pytest.fixture(scope="session")
def d3_session():
    return quick_session("D3", rate_mbps=3.0, duration_s=120.0)


@pytest.fixture(scope="session")
def s2_session():
    return quick_session("S2", rate_mbps=3.0, duration_s=120.0)
