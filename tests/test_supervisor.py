"""Sweep-fabric layer 3: the crash-safe sweep supervisor.

The supervisor's contract is the repo's determinism contract with
failure injected: supervision changes *where and whether* a lease
executes — retries, pool respawns, serial degradation, journal resume
— never what it produces.  So every chaos test here ends in the same
assertion: the survivors compare ``==`` to a clean ``workers=0`` run.

Chaos mechanics: the host uses the ``fork`` start method, so worker
processes inherit the parent's environment at spawn.  Injected tasks
(module-level, hence picklable) read a marker directory from the
environment to coordinate "kill yourself exactly once" / "hang on this
spec" behaviour across the process boundary.
"""

from __future__ import annotations

import json
import os
import shutil
import signal
import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.outcome_cache import code_fingerprint, lease_key
from repro.core.parallel import RunSpec
from repro.core.pool import close_worker_pool
from repro.core.run import aggregate_metrics, execute
from repro.core.supervisor import (
    FailedOutcome,
    SweepJournal,
    SweepPolicy,
    SweepSupervisor,
    _lease_task,
    resolve_sweep_journal,
    sweep_key,
)
from repro.obs.metrics import EMPTY_SNAPSHOT

DURATION_S = 10.0
_ENV_DIR = "REPRO_SUP_TEST_DIR"
_ENV_PARENT = "REPRO_SUP_TEST_PARENT"


@pytest.fixture(autouse=True)
def _fresh_pool():
    close_worker_pool()
    yield
    close_worker_pool()


def _specs(profiles=(1, 5, 9)):
    return [
        RunSpec(
            service="H1",
            profile_id=profile_id,
            duration_s=DURATION_S,
            fast_forward=True,
        )
        for profile_id in profiles
    ]


_BASELINE: dict = {}


def _baseline(profiles=(1, 5, 9)):
    """The clean workers=0 oracle for a profile tuple, computed once."""
    if profiles not in _BASELINE:
        _BASELINE[profiles] = execute(_specs(profiles), workers=0)
    return _BASELINE[profiles]


# ---------------------------------------------------------------------------
# Injected chaos tasks (module level: they must pickle across fork)
# ---------------------------------------------------------------------------


def _logged_lease_task(args):
    """The real lease task, with an append-only call log so tests can
    bound how much work a recovery actually re-ran."""
    spec, _ = args
    base = os.environ[_ENV_DIR]
    with open(os.path.join(base, "calls.log"), "a") as handle:
        handle.write(f"{spec.service_name}:{spec.profile_id}\n")
    return _lease_task(args)


def _kill_once_task(args):
    """SIGKILL this worker the first time the poison spec arrives."""
    spec, _ = args
    base = os.environ[_ENV_DIR]
    with open(os.path.join(base, "calls.log"), "a") as handle:
        handle.write(f"{spec.service_name}:{spec.profile_id}\n")
    marker = os.path.join(base, "killed")
    if spec.profile_id == 9 and not os.path.exists(marker):
        with open(marker, "w"):
            pass
        os.kill(os.getpid(), signal.SIGKILL)
    return _lease_task(args)


def _hang_task(args):
    """Hang forever on the poison spec (until the supervisor's respawn
    terminates this worker); run everything else normally."""
    spec, _ = args
    if spec.profile_id == 9:
        time.sleep(600)
    return _lease_task(args)


def _die_in_workers_task(args):
    """Kill every worker immediately; succeed only in the parent — the
    degradation path's happy ending."""
    spec, _ = args
    if os.getpid() != int(os.environ[_ENV_PARENT]):
        os.kill(os.getpid(), signal.SIGKILL)
    return (("serial-ok", spec.profile_id), os.getpid(), 0, 0)


# ---------------------------------------------------------------------------
# Policy and FailedOutcome basics
# ---------------------------------------------------------------------------


def test_sweep_policy_validates():
    with pytest.raises(ValueError, match="max_attempts"):
        SweepPolicy(max_attempts=0)
    with pytest.raises(ValueError, match="timeout_s"):
        SweepPolicy(timeout_s=0.0)
    assert SweepPolicy().max_attempts == 1  # legacy semantics by default


def test_failed_outcome_ducktypes_where_outcomes_ride():
    failed = FailedOutcome(
        spec=_specs()[0], kind="error", attempts=3, message="boom"
    )
    assert failed.record is None
    assert failed.result is None
    assert failed.trace == ()
    # aggregate_metrics over a mixed sweep must not care.
    merged = aggregate_metrics([failed, failed])
    assert merged == EMPTY_SNAPSHOT


def test_backoff_is_seeded_and_capped():
    sup = SweepSupervisor(
        0, policy=SweepPolicy(backoff_base_s=0.1, backoff_cap_s=0.5)
    )
    from repro.core.supervisor import _Lease

    lease = _Lease(index=0, spec=_specs()[0], key="abc", attempts=1)
    first = sup._backoff_delay(lease)
    assert first == sup._backoff_delay(lease)  # deterministic per attempt
    lease.attempts = 9
    assert sup._backoff_delay(lease) <= 0.5  # capped despite 2**8 growth


# ---------------------------------------------------------------------------
# Retry / quarantine, with injected in-process tasks
# ---------------------------------------------------------------------------


def test_flaky_lease_retries_then_succeeds():
    attempts = []

    def flaky(args):
        spec, _ = args
        attempts.append(spec.profile_id)
        if len(attempts) < 3:
            raise RuntimeError("transient")
        return (("ok", spec.profile_id), os.getpid(), 0, 0)

    sup = SweepSupervisor(
        0,
        policy=SweepPolicy(max_attempts=3, backoff_base_s=0.0),
        task=flaky,
    )
    outcomes = sup.run(_specs(profiles=(5,)))
    assert outcomes == [("ok", 5)]
    assert sup.stats.retries == 2
    assert sup.stats.quarantined == 0


def test_poison_lease_quarantines_without_sinking_the_sweep():
    def poisoned(args):
        spec, _ = args
        if spec.profile_id == 5:
            raise RuntimeError("always broken")
        return (("ok", spec.profile_id), os.getpid(), 0, 0)

    sup = SweepSupervisor(
        0,
        policy=SweepPolicy(
            max_attempts=2, backoff_base_s=0.0, quarantine=True
        ),
        task=poisoned,
    )
    outcomes = sup.run(_specs())
    assert outcomes[0] == ("ok", 1)
    assert outcomes[2] == ("ok", 9)
    failed = outcomes[1]
    assert isinstance(failed, FailedOutcome)
    assert failed.kind == "error"
    assert failed.attempts == 2
    assert "always broken" in failed.message
    assert sup.stats.quarantined == 1
    assert sup.stats.retries == 1


def test_exhausted_lease_raises_when_quarantine_is_off():
    def broken(args):
        raise RuntimeError("always broken")

    sup = SweepSupervisor(
        0, policy=SweepPolicy(max_attempts=2, backoff_base_s=0.0), task=broken
    )
    with pytest.raises(RuntimeError, match="always broken"):
        sup.run(_specs(profiles=(5,)))
    assert sup.stats.retries == 1


# ---------------------------------------------------------------------------
# The journal
# ---------------------------------------------------------------------------


def test_journal_records_survive_reload(tmp_path):
    journal = SweepJournal(tmp_path)
    journal.record("a" * 64, "done", attempt=1, duration_s=0.5)
    journal.record("b" * 64, "failed", attempt=1, duration_s=0.1)
    reloaded = SweepJournal(tmp_path)
    assert len(reloaded) == 2
    assert reloaded.completed("a" * 64)["status"] == "done"
    assert reloaded.completed("b" * 64) is None  # failed is not terminal


def test_journal_tolerates_torn_tail_line(tmp_path):
    journal = SweepJournal(tmp_path)
    journal.record("a" * 64, "done", attempt=1, duration_s=0.5)
    with open(journal.path, "a") as handle:
        handle.write('{"spec_sha": "tor')  # killed mid-append
    reloaded = SweepJournal(tmp_path)
    assert len(reloaded) == 1
    assert reloaded.completed("a" * 64) is not None


def test_resolve_sweep_journal_forms(tmp_path):
    assert resolve_sweep_journal(None) is None
    assert resolve_sweep_journal(False) is None
    journal = SweepJournal(tmp_path / "j")
    assert resolve_sweep_journal(journal) is journal
    from_path = resolve_sweep_journal(tmp_path / "k")
    assert isinstance(from_path, SweepJournal)
    key = sweep_key(_specs())
    assert key == sweep_key(_specs())  # stable sweep identity
    assert key != sweep_key(_specs(profiles=(1, 5)))


def test_journalled_sweep_resumes_skipping_done_leases(tmp_path):
    specs = _specs()
    first = execute(specs, workers=0, journal=tmp_path)
    assert first == _baseline()
    lines = [
        json.loads(line)
        for line in (tmp_path / "journal.jsonl").read_text().splitlines()
    ]
    assert [entry["status"] for entry in lines] == ["done"] * 3
    assert {entry["spec_sha"] for entry in lines} == {
        lease_key(spec) for spec in specs
    }
    # Resume: everything skips, outcomes still == the oracle.
    sup = SweepSupervisor(0, journal=SweepJournal(tmp_path))
    second = sup.run(specs)
    assert second == _baseline()
    assert sup.stats.resumed_skips == 3


def test_stale_quarantine_entries_rerun_under_new_code(tmp_path):
    spec = _specs(profiles=(5,))[0]
    key = lease_key(spec)
    journal = SweepJournal(tmp_path)
    entry = {
        "spec_sha": key, "status": "quarantined", "attempt": 3,
        "duration": 0.0, "kind": "error", "code": "0" * 16,
    }
    with open(journal.path, "a") as handle:
        handle.write(json.dumps(entry) + "\n")
    # Old-code quarantine: re-run (the fix may have cured the spec).
    sup = SweepSupervisor(0, journal=SweepJournal(tmp_path))
    assert sup.run([spec]) == _baseline(profiles=(5,))
    assert sup.stats.resumed_skips == 0
    # Same-code quarantine: honoured as a typed failure.
    entry["code"] = code_fingerprint()
    with open(journal.path, "a") as handle:
        handle.write(json.dumps(entry) + "\n")
    sup = SweepSupervisor(0, journal=SweepJournal(tmp_path))
    restored = sup.run([spec])
    assert isinstance(restored[0], FailedOutcome)
    assert sup.stats.resumed_skips == 1


def test_journalled_pool_sweep_matches_serial_and_resumes(tmp_path):
    specs = _specs()
    first = execute(specs, workers=2, journal=tmp_path)
    assert first == _baseline()
    second = execute(specs, workers=2, journal=tmp_path)
    assert second == _baseline()
    # Three leases, three journal lines: the resume re-ran nothing.
    lines = (tmp_path / "journal.jsonl").read_text().splitlines()
    assert len(lines) == 3


def test_keep_results_refuses_supervision(tmp_path):
    with pytest.raises(ValueError, match="keep_results"):
        execute(
            _specs(profiles=(5,)), workers=0, keep_results=True,
            journal=tmp_path,
        )
    with pytest.raises(ValueError, match="keep_results"):
        execute(
            _specs(profiles=(5,)), workers=0, keep_results=True,
            policy=SweepPolicy(max_attempts=2),
        )


# ---------------------------------------------------------------------------
# Chaos: worker death, hangs, degradation
# ---------------------------------------------------------------------------


def test_sigkilled_worker_loses_no_results(tmp_path, monkeypatch):
    """The acceptance scenario: a worker dies mid-sweep, the supervisor
    salvages every delivered result, re-runs only in-flight leases, and
    the final outcomes == the serial oracle."""
    monkeypatch.setenv(_ENV_DIR, str(tmp_path))
    profiles = (1, 2, 5, 7, 9, 11)
    specs = _specs(profiles=profiles)
    sup = SweepSupervisor(2, task=_kill_once_task)
    outcomes = sup.run(specs)
    assert (tmp_path / "killed").exists()  # the kill really happened
    assert outcomes == _baseline(profiles=profiles)
    assert sup.stats.pool_respawns >= 1
    assert sup.stats.serial_degradations == 0
    # Only in-flight leases re-ran: with 2 workers at most 2 leases were
    # in flight at the kill, so the call log is bounded accordingly.
    calls = (tmp_path / "calls.log").read_text().splitlines()
    assert len(specs) < len(calls) <= len(specs) + 2


def test_hung_lease_times_out_and_innocents_survive(monkeypatch, tmp_path):
    monkeypatch.setenv(_ENV_DIR, str(tmp_path))
    profiles = (1, 5, 9, 11)
    specs = _specs(profiles=profiles)
    sup = SweepSupervisor(
        2,
        policy=SweepPolicy(timeout_s=3.0, quarantine=True),
        task=_hang_task,
    )
    outcomes = sup.run(specs)
    baseline = _baseline(profiles=profiles)
    failed = outcomes[2]
    assert isinstance(failed, FailedOutcome)
    assert failed.kind == "timeout"
    assert [outcomes[0], outcomes[1], outcomes[3]] == [
        baseline[0], baseline[1], baseline[3]
    ]
    assert sup.stats.timeouts == 1
    assert sup.stats.quarantined == 1
    assert sup.stats.pool_respawns >= 1


def test_repeated_pool_deaths_degrade_to_serial(monkeypatch):
    monkeypatch.setenv(_ENV_PARENT, str(os.getpid()))
    specs = _specs(profiles=(1, 5, 9, 11))
    sup = SweepSupervisor(
        2,
        policy=SweepPolicy(max_pool_respawns=1),
        task=_die_in_workers_task,
    )
    outcomes = sup.run(specs)
    # The parent finished the sweep in-process, in spec order.
    assert outcomes == [("serial-ok", p) for p in (1, 5, 9, 11)]
    assert sup.stats.serial_degradations == 1
    assert sup.stats.pool_respawns == 1  # one respawn, then degradation


# ---------------------------------------------------------------------------
# Property: resume from any kill point replays to the same sweep
# ---------------------------------------------------------------------------


_JOURNAL_SEED: dict = {}


def _seed_journal(tmp_path_factory):
    """A fully journalled 3-spec sweep to truncate from, built once."""
    if "root" not in _JOURNAL_SEED:
        root = tmp_path_factory.mktemp("journal-seed")
        outcomes = execute(_specs(), workers=0, journal=root)
        assert outcomes == _baseline()
        _JOURNAL_SEED["root"] = root
    return _JOURNAL_SEED["root"]


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(keep=st.integers(min_value=0, max_value=3), torn=st.booleans())
def test_resume_from_any_kill_point_is_identical(
    tmp_path_factory, keep, torn
):
    """Kill a journalled sweep after any number of completed leases —
    with or without a torn half-written line — and the resumed sweep
    always reproduces the oracle, skipping exactly the journalled part."""
    seed = _seed_journal(tmp_path_factory)
    work = tmp_path_factory.mktemp("journal-resume")
    shutil.copytree(seed / "outcomes", work / "outcomes")
    lines = (seed / "journal.jsonl").read_text().splitlines()
    truncated = "".join(line + "\n" for line in lines[:keep])
    if torn:
        truncated += '{"spec_sha": "half-writ'  # the kill's torn tail
    (work / "journal.jsonl").write_text(truncated)

    sup = SweepSupervisor(0, journal=SweepJournal(work))
    outcomes = sup.run(_specs())
    assert outcomes == _baseline()
    assert sup.stats.resumed_skips == keep
    # The journal healed: every lease is terminal again.
    healed = SweepJournal(work)
    assert all(
        healed.completed(lease_key(spec)) is not None for spec in _specs()
    )


# ---------------------------------------------------------------------------
# Journal concurrency, group commit, and corrupted-line accounting
# ---------------------------------------------------------------------------


def _status_key(entry):
    return (entry["status"], entry["attempt"])


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    schedule=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=1),  # which writer
            st.integers(min_value=0, max_value=4),  # which lease key
            st.sampled_from(["done", "quarantined"]),
        ),
        min_size=1,
        max_size=24,
    ),
    batched_writer=st.integers(min_value=0, max_value=2),
)
def test_interleaved_journals_load_as_union_last_writer_wins(
    tmp_path_factory, schedule, batched_writer
):
    """Two journal instances on one directory — the coordinator's
    shard-merge scenario — interleave at line granularity: a reload
    sees the union of both writers' records, last writer winning per
    lease key.  Holds with either writer (or neither) in group-commit
    mode: batching defers the fsync, not the append."""
    root = tmp_path_factory.mktemp("interleave")
    writers = [SweepJournal(root), SweepJournal(root)]
    if batched_writer < 2:
        writers[batched_writer].flush_every = 8
    expected: dict = {}
    for attempt, (writer, key_index, status) in enumerate(schedule, start=1):
        key = f"{key_index:064d}"
        writers[writer].record(
            key, status, attempt=attempt, duration_s=0.0
        )
        expected[key] = (status, attempt)
    for journal in writers:
        journal.close()
    reloaded = SweepJournal(root)
    assert reloaded.skipped_lines == 0
    loaded = {
        key: _status_key(entry)
        for key, entry in reloaded.entries().items()
    }
    assert loaded == expected


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    records=st.integers(min_value=1, max_value=20),
    torn_bytes=st.integers(min_value=1, max_value=30),
)
def test_batched_journal_survives_torn_tail_kill(
    tmp_path_factory, records, torn_bytes
):
    """Group-commit mode keeps the torn-tail guarantee: append N
    records without closing (the kill), glue a half-written line on the
    end, and a reload recovers every whole line and drops the tear."""
    root = tmp_path_factory.mktemp("batched-torn")
    journal = SweepJournal(root, flush_every=64)
    for index in range(records):
        journal.record(
            f"{index:064d}", "done", attempt=1, duration_s=0.0
        )
    # No close(): the writer is "killed" with the batch unsynced.  The
    # bytes are already appended (fsync is durability-against-power-
    # loss, not visibility), so a reader recovers all whole lines.
    partial = json.dumps(
        {"spec_sha": "x" * 64, "status": "done", "attempt": 1}
    )[:torn_bytes]
    with open(journal.path, "ab") as handle:
        handle.write(partial.encode())
    reloaded = SweepJournal(root)
    assert len(reloaded) == records
    assert reloaded.skipped_lines == 0
    journal.close()


def test_journal_counts_and_reports_skipped_lines(tmp_path, caplog):
    import logging

    journal = SweepJournal(tmp_path)
    journal.record("a" * 64, "done", attempt=1, duration_s=0.1)
    with open(journal.path, "a") as handle:
        handle.write("not json at all\n")
        handle.write('{"valid_json": "but no spec_sha"}\n')
        handle.write(json.dumps(
            {"spec_sha": "b" * 64, "status": "done", "attempt": 1,
             "duration": 0.1, "code": code_fingerprint()}
        ) + "\n")
    from repro.obs.metrics import process_registry

    before = process_registry().counter(
        "sweep.journal_skipped_lines"
    ).value
    with caplog.at_level(logging.WARNING, logger="repro.sweep"):
        reloaded = SweepJournal(tmp_path)
    assert reloaded.skipped_lines == 2
    assert len(reloaded) == 2  # both good lines survived the garbage
    after = process_registry().counter(
        "sweep.journal_skipped_lines"
    ).value
    assert after - before == 2
    assert any(
        "skipped 2 undecodable line(s)" in record.message
        and "line 2" in record.message
        for record in caplog.records
    )


def test_batched_mode_validates_and_restores(tmp_path):
    with pytest.raises(ValueError, match="flush_every"):
        SweepJournal(tmp_path / "bad", flush_every=0)
    journal = SweepJournal(tmp_path)
    assert journal.flush_every == 1
    with journal.batched(16) as same:
        assert same is journal
        assert journal.flush_every == 16
        journal.record("c" * 64, "done", attempt=1, duration_s=0.0)
    assert journal.flush_every == 1
    assert journal._handle is None  # handle released on exit
    assert SweepJournal(tmp_path).completed("c" * 64) is not None
