"""Player engine integration tests against the full stack."""

import pytest

from repro.core.session import Session
from tests.support import run_session
from repro.media.track import StreamType
from repro.net.schedule import ConstantSchedule, StepSchedule
from repro.player.config import PlayerConfig, SchedulerStrategy
from repro.player.events import (
    PlaybackStarted,
    SegmentCompleted,
    SegmentDiscarded,
    SegmentPlayStarted,
    SessionEnded,
    StallEnded,
    StallStarted,
)
from repro.player.player import PlayerState
from repro.player.replacement import ExoV1Replacement
from repro.server import OriginServer
from repro.services import build_service, get_service
from repro.services.exoplayer import exoplayer_config
from repro.services.exoplayer import testcard_dash_spec as make_testcard_spec
from repro.util import kbps, mbps

from tests.conftest import quick_session


class TestBasicPlayback:
    def test_plays_to_content_end(self):
        result = quick_session("H1", rate_mbps=4.0, duration_s=120.0,
                               content_duration_s=60.0)
        assert result.player_state is PlayerState.ENDED
        ended = result.events.of_type(SessionEnded)
        assert ended and ended[0].reason == "content finished"
        assert ended[0].position_s == pytest.approx(60.0, abs=0.2)

    def test_startup_before_buffer_filled(self, h1_session):
        started = h1_session.events.of_type(PlaybackStarted)
        assert started
        # H1 startup buffer = 8 s; at 4 Mbps that is quick.
        assert started[0].at < 5.0

    def test_no_stalls_on_ample_bandwidth(self, h1_session):
        assert h1_session.events.total_stall_s() == 0.0

    def test_play_position_monotonic(self, h1_session):
        samples = h1_session.player.ui_samples
        positions = [sample.position_s for sample in samples]
        assert all(b >= a - 1e-9 for a, b in zip(positions, positions[1:]))

    def test_ui_samples_are_1hz(self, h1_session):
        times = [sample.at for sample in h1_session.player.ui_samples]
        deltas = [round(b - a, 3) for a, b in zip(times, times[1:])]
        assert set(deltas) == {1.0}

    def test_segment_play_events_ordered(self, h1_session):
        events = h1_session.events.of_type(SegmentPlayStarted)
        indexes = [event.index for event in events]
        assert indexes == sorted(indexes)
        assert indexes[0] == 0


class TestStalling:
    def test_stall_when_bandwidth_collapses(self):
        schedule = StepSchedule.single_step(mbps(3), kbps(40), 15.0)
        result = run_session("H1", schedule, duration_s=200.0,
                             content_duration_s=400.0)
        stalls = result.events.of_type(StallStarted)
        assert stalls
        assert stalls[0].at > 15.0

    def test_stall_events_paired(self):
        schedule = StepSchedule(
            steps=((0.0, mbps(3)), (15.0, kbps(40)), (90.0, mbps(3)))
        )
        result = run_session("H1", schedule, duration_s=220.0,
                             content_duration_s=400.0)
        starts = result.events.of_type(StallStarted)
        ends = result.events.of_type(StallEnded)
        assert len(starts) >= 1
        assert len(ends) >= len(starts) - 1
        for start, end in zip(starts, ends):
            assert end.at > start.at
            assert end.duration_s == pytest.approx(end.at - start.at, abs=0.2)

    def test_recovers_after_stall(self):
        schedule = StepSchedule(
            steps=((0.0, mbps(3)), (15.0, kbps(40)), (90.0, mbps(3)))
        )
        result = run_session("H1", schedule, duration_s=220.0,
                             content_duration_s=400.0)
        assert result.player_state in (PlayerState.PLAYING, PlayerState.ENDED)
        # Playback moved past the stall position.
        assert result.player.position_s > 60.0


class TestStartupLogic:
    def test_min_segment_constraint_delays_start(self):
        spec = make_testcard_spec(4.0)
        one = run_session(spec, ConstantSchedule(mbps(2)), duration_s=40.0,
                          content_duration_s=120.0,
                          player_config=exoplayer_config(
                              startup_buffer_s=4.0, startup_min_segments=1))
        three = run_session(spec, ConstantSchedule(mbps(2)), duration_s=40.0,
                            content_duration_s=120.0,
                            player_config=exoplayer_config(
                                startup_buffer_s=4.0, startup_min_segments=3))
        assert one.true_startup_delay_s < three.true_startup_delay_s

    def test_startup_track_pinned(self):
        result = quick_session("H3", rate_mbps=6.0, duration_s=30.0)
        first = result.events.of_type(SegmentCompleted)[0]
        assert first.declared_bitrate_bps == pytest.approx(kbps(1050))

    def test_short_content_still_starts(self):
        # Content shorter than the startup buffer must not deadlock.
        result = quick_session("S1", rate_mbps=6.0, duration_s=40.0,
                               content_duration_s=8.0)
        assert result.playback_started
        assert result.player_state is PlayerState.ENDED


class TestDownloadControl:
    def test_on_off_pattern_under_ample_bandwidth(self):
        result = run_session("H5", ConstantSchedule(mbps(10)),
                             duration_s=200.0, content_duration_s=500.0)
        completions = [e.at for e in result.events.of_type(SegmentCompleted)]
        gaps = [b - a for a, b in zip(completions, completions[1:])]
        assert max(gaps) > 5.0  # pauses appear

    def test_buffer_bounded_by_pause_threshold(self):
        result = run_session("S2", ConstantSchedule(mbps(10)),
                             duration_s=120.0, content_duration_s=400.0)
        config = get_service("S2")
        # occupancy never exceeds pause threshold + one segment
        max_occ = max(
            result.player.buffer_s(StreamType.VIDEO), config.pausing_threshold_s
        )
        assert max_occ <= config.pausing_threshold_s + config.segment_duration_s + 1


class TestSeparateAudio:
    def test_audio_and_video_downloaded(self, d3_session):
        streams = {e.stream_type for e in
                   d3_session.events.of_type(SegmentCompleted)}
        assert streams == {StreamType.VIDEO, StreamType.AUDIO}

    def test_playback_requires_both_streams(self):
        # D1 on a starving link stalls even with video buffered (Fig 6).
        result = run_session("D1", ConstantSchedule(kbps(330)),
                             duration_s=300.0, content_duration_s=600.0)
        stalls = result.events.of_type(StallStarted)
        if stalls:  # emergent; check the signature when it happens
            at = stalls[0].at
            video = result.buffer_estimator.occupancy_at(at, StreamType.VIDEO)
            audio = result.buffer_estimator.occupancy_at(at, StreamType.AUDIO)
            assert video > audio


class TestSegmentReplacementIntegration:
    def test_discard_tail_produces_refetch(self):
        schedule = StepSchedule(steps=((0.0, kbps(900)), (60.0, mbps(6))))
        result = run_session("H4", schedule, duration_s=160.0,
                             content_duration_s=400.0)
        discarded = result.events.of_type(SegmentDiscarded)
        assert discarded
        completions = result.events.of_type(SegmentCompleted)
        indexes = [e.index for e in completions if e.stream_type is
                   StreamType.VIDEO]
        assert len(indexes) > len(set(indexes))  # duplicates = redownloads

    def test_improved_replacement_swaps_in_place(self):
        spec = make_testcard_spec(4.0)
        schedule = StepSchedule(steps=((0.0, kbps(700)), (40.0, mbps(6))))
        result = run_session(spec, schedule, duration_s=120.0,
                             content_duration_s=240.0,
                             player_config=exoplayer_config(sr="improved"))
        replacements = [e for e in result.events.of_type(SegmentCompleted)
                        if e.is_replacement]
        assert replacements
        # every replacement strictly increased the level of that index
        discards = result.events.of_type(SegmentDiscarded)
        by_index = {d.index: d for d in discards}
        for replacement in replacements:
            old = by_index.get(replacement.index)
            if old is not None:
                assert replacement.level > old.level


class TestErrorHandling:
    def test_player_survives_rejections(self):
        # Reject everything after 1 segment; the player must keep
        # retrying without crashing and never start (H1 needs 2).
        result = quick_session("H1", rate_mbps=6.0, duration_s=20.0,
                               reject_after_segments=1)
        assert not result.playback_started
        assert result.proxy.rejected_count > 3  # kept retrying

    def test_player_starts_with_enough_segments(self):
        result = quick_session("H1", rate_mbps=6.0, duration_s=30.0,
                               reject_after_segments=4)
        assert result.playback_started


class TestEncryptedManifest:
    def test_d3_plays_with_cipher(self, d3_session):
        assert d3_session.playback_started
        assert d3_session.events.of_type(SegmentCompleted)

    def test_d3_without_cipher_cannot_play(self):
        server = OriginServer()
        built = build_service("D3", server, duration_s=60.0)
        crippled = Session(
            built.__class__(
                spec=built.spec, asset=built.asset, hosting=built.hosting,
                player_config=built.player_config, cipher=None,
            ),
            server,
            ConstantSchedule(mbps(5)),
        )
        with pytest.raises(Exception):
            crippled.run(20.0)
