"""Service spec invariants: Table 1 and the paper's server-side facts."""

import math

import pytest

from repro.manifest.types import Protocol
from repro.media.encoder import DeclaredBitratePolicy, EncodingMode
from repro.player.config import SchedulerStrategy
from repro.server import OriginServer
from repro.services import (
    ALL_SERVICE_NAMES,
    SERVICES,
    build_service,
    exoplayer_config,
    get_service,
)
from repro.services import sintel_hls_spec as make_sintel_spec
from repro.services import testcard_dash_spec as make_testcard_spec

HLS = [f"H{i}" for i in range(1, 7)]
DASH = [f"D{i}" for i in range(1, 5)]
SMOOTH = ["S1", "S2"]


class TestRegistry:
    def test_twelve_services(self):
        assert len(SERVICES) == 12
        assert set(ALL_SERVICE_NAMES) == set(HLS + DASH + SMOOTH)

    def test_get_service(self):
        assert get_service("H1").name == "H1"
        with pytest.raises(KeyError, match="unknown service"):
            get_service("X9")

    def test_protocols(self):
        for name in HLS:
            assert get_service(name).protocol is Protocol.HLS
        for name in DASH:
            assert get_service(name).protocol is Protocol.DASH
        for name in SMOOTH:
            assert get_service(name).protocol is Protocol.SMOOTH


class TestTable1Values:
    """The exact design values of Table 1."""

    def test_segment_durations(self):
        expected = {"H1": 4, "H2": 2, "H3": 9, "H4": 9, "H5": 6, "H6": 10,
                    "D1": 5, "D2": 5, "D3": 2, "D4": 6, "S1": 2, "S2": 3}
        for name, duration in expected.items():
            assert get_service(name).segment_duration_s == duration

    def test_audio_segment_footnote(self):
        # "The audio segment duration of D1 and S2 is 2s."
        assert get_service("D1").audio_segment_duration_s == 2.0
        assert get_service("S2").audio_segment_duration_s == 2.0

    def test_separate_audio(self):
        for name in HLS:
            assert not get_service(name).separate_audio
        for name in DASH + SMOOTH:
            assert get_service(name).separate_audio

    def test_max_tcp(self):
        expected = {"H1": 1, "H2": 1, "H3": 1, "H4": 1, "H5": 1, "H6": 1,
                    "D1": 6, "D2": 2, "D3": 3, "D4": 3, "S1": 2, "S2": 2}
        for name, count in expected.items():
            spec = get_service(name)
            total = (spec.video_connections + spec.audio_connections
                     if spec.strategy is SchedulerStrategy.PARTITIONED_PARALLEL
                     else spec.max_tcp)
            assert total == count, name

    def test_persistence(self):
        non_persistent = {"H2", "H3", "H5"}
        for name in ALL_SERVICE_NAMES:
            assert get_service(name).persistent == (name not in non_persistent)

    def test_startup_buffer_seconds(self):
        expected = {"H1": 8, "H2": 8, "H3": 9, "H4": 9, "H5": 12, "H6": 10,
                    "D1": 15, "D2": 5, "D3": 8, "D4": 6, "S1": 16, "S2": 6}
        for name, value in expected.items():
            assert get_service(name).startup_buffer_s == value

    def test_startup_bitrates(self):
        expected = {"H1": 630, "H2": 1330, "H3": 1050, "H4": 470, "H5": 1850,
                    "H6": 880, "D1": 410, "D2": 300, "D3": 400, "D4": 670,
                    "S1": 1350, "S2": 760}
        for name, value in expected.items():
            assert get_service(name).startup_bitrate_kbps == value

    def test_thresholds(self):
        expected = {"H1": (95, 85), "H2": (90, 84), "H3": (40, 30),
                    "H4": (155, 135), "H5": (30, 20), "H6": (80, 70),
                    "D1": (182, 178), "D2": (30, 25), "D3": (120, 90),
                    "D4": (34, 15), "S1": (180, 175), "S2": (30, 4)}
        for name, (pause, resume) in expected.items():
            spec = get_service(name)
            assert (spec.pausing_threshold_s, spec.resuming_threshold_s) == \
                (pause, resume)

    def test_single_segment_startup_services(self):
        # Table 2: H3, H4, H6, D2, D4 start playback with one segment.
        single = {name for name in ALL_SERVICE_NAMES
                  if get_service(name).startup_segments == 1}
        assert single == {"H3", "H4", "H6", "D2", "D4"}

    def test_sr_services(self):
        assert {n for n in ALL_SERVICE_NAMES if get_service(n).performs_sr} \
            == {"H1", "H4"}

    def test_decrease_buffer_thresholds(self):
        expected = {"H2": 40.0, "D3": 30.0, "S1": 50.0}
        for name in ALL_SERVICE_NAMES:
            spec = get_service(name)
            assert spec.decrease_buffer_threshold_s == expected.get(name)

    def test_unstable_service(self):
        assert [n for n in ALL_SERVICE_NAMES if get_service(n).abr_unstable] \
            == ["D1"]

    def test_encrypted_manifest(self):
        assert [n for n in ALL_SERVICE_NAMES
                if get_service(n).encrypted_manifest] == ["D3"]


class TestLadderConstraints:
    """Server-side observations of section 3.1."""

    def test_highest_track_range(self):
        for name in ALL_SERVICE_NAMES:
            highest = get_service(name).highest_track_kbps
            assert 2000 <= highest <= 5500, name

    def test_high_bottom_track_services(self):
        high = {name for name in ALL_SERVICE_NAMES
                if get_service(name).lowest_track_kbps > 500}
        assert high == {"H2", "H5", "S1"}

    def test_inter_track_spacing(self):
        # Apple's guideline: adjacent tracks a factor of 1.5-2 apart.
        for name in ALL_SERVICE_NAMES:
            ladder = get_service(name).ladder_kbps
            for low, high in zip(ladder, ladder[1:]):
                assert 1.35 <= high / low <= 2.1, (name, low, high)

    def test_three_cbr_services(self):
        cbr = {name for name in ALL_SERVICE_NAMES
               if get_service(name).encoding is EncodingMode.CBR}
        assert cbr == {"H2", "H3", "H5"}

    def test_smooth_declares_average(self):
        for name in SMOOTH:
            assert get_service(name).declared_policy is \
                DeclaredBitratePolicy.AVERAGE
        for name in HLS + DASH:
            assert get_service(name).declared_policy is \
                DeclaredBitratePolicy.PEAK

    def test_startup_track_exists_in_ladder(self):
        for name in ALL_SERVICE_NAMES:
            spec = get_service(name)
            assert spec.startup_bitrate_kbps in spec.ladder_kbps, name


class TestBuildService:
    def test_build_each_service(self):
        for name in ALL_SERVICE_NAMES:
            server = OriginServer()
            built = build_service(name, server, duration_s=30.0)
            assert server.has_resource(built.manifest_url)
            assert built.player_config.name == name
            assert (built.cipher is not None) == (name == "D3")

    def test_derived_vbr_ratio(self):
        """VBR peak-declared services: average actual ~= half declared
        (the Figure 5 / section 4.2 precondition for D1/D2)."""
        server = OriginServer()
        built = build_service("D2", server, duration_s=300.0)
        top = built.asset.video_tracks[-1]
        ratio = top.average_actual_bitrate_bps / top.declared_bitrate_bps
        assert 0.4 < ratio < 0.7

    def test_startup_segment_counts_match_formula(self):
        for name in ALL_SERVICE_NAMES:
            spec = get_service(name)
            assert spec.startup_segments == max(
                1, math.ceil(spec.startup_buffer_s / spec.segment_duration_s)
            )


class TestExoPlayerPresets:
    def test_sr_modes(self):
        for mode in ("none", "v1", "improved", "capped"):
            config = exoplayer_config(sr=mode)
            assert config.allow_mid_replacement == (mode in
                                                    ("improved", "capped"))

    def test_invalid_sr(self):
        with pytest.raises(ValueError):
            exoplayer_config(sr="bogus")

    def test_use_actual_prefetches_indexes(self):
        assert exoplayer_config(use_actual=True).prefetch_all_indexes
        assert not exoplayer_config().prefetch_all_indexes

    def test_test_streams(self):
        testcard = make_testcard_spec(8.0)
        assert testcard.segment_duration_s == 8.0
        assert testcard.protocol is Protocol.DASH
        sintel = make_sintel_spec()
        assert sintel.protocol is Protocol.HLS
        assert len(sintel.ladder_kbps) == 7
