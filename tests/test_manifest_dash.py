"""DASH MPD + sidx generation/parsing round-trips."""

import pytest

from repro.manifest import (
    ManifestError,
    Protocol,
    SidxBox,
    SidxReference,
    parse_any_manifest,
    parse_iso_duration,
    parse_mpd,
    parse_sidx,
    segments_from_sidx,
)
from repro.manifest.dash import DashBuilder, SegmentAddressing
from repro.media.track import StreamType


@pytest.fixture(scope="module", params=[SegmentAddressing.SIDX,
                                        SegmentAddressing.INLINE])
def builder(request, small_asset):
    return DashBuilder(base_url="https://cdn.test", asset=small_asset,
                       addressing=request.param)


class TestSidxBox:
    def _box(self, sizes=(100, 200, 300), duration_ticks=4000):
        references = tuple(
            SidxReference(referenced_size=size,
                          subsegment_duration=duration_ticks)
            for size in sizes
        )
        return SidxBox(timescale=1000, references=references)

    def test_encode_parse_round_trip(self):
        box = self._box()
        parsed = parse_sidx(box.encode())
        assert parsed == box

    def test_size_matches_encoding(self):
        box = self._box()
        assert len(box.encode()) == box.size_bytes

    def test_durations(self):
        box = self._box(duration_ticks=2500)
        assert box.segment_durations_s() == [2.5, 2.5, 2.5]

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            SidxBox(timescale=1000, references=())

    def test_rejects_bad_timescale(self):
        with pytest.raises(ValueError):
            SidxBox(timescale=0, references=(SidxReference(1, 1),))

    def test_reference_size_bounds(self):
        with pytest.raises(ValueError):
            SidxReference(referenced_size=0, subsegment_duration=1)
        with pytest.raises(ValueError):
            SidxReference(referenced_size=1 << 31, subsegment_duration=1)

    def test_parse_rejects_truncated(self):
        with pytest.raises(ManifestError, match="truncated"):
            parse_sidx(b"\x00\x01")

    def test_parse_rejects_wrong_box(self):
        data = bytearray(self._box().encode())
        data[4:8] = b"moov"
        with pytest.raises(ManifestError, match="not a sidx"):
            parse_sidx(bytes(data))


class TestIsoDuration:
    def test_seconds(self):
        assert parse_iso_duration("PT600.000S") == 600.0

    def test_hms(self):
        assert parse_iso_duration("PT1H2M3S") == 3723.0

    def test_rejects_garbage(self):
        with pytest.raises(ManifestError):
            parse_iso_duration("10 minutes")


class TestMpdRoundTrip:
    def test_protocol_and_counts(self, builder, small_asset):
        manifest = parse_mpd(builder.mpd(), builder.mpd_url)
        assert manifest.protocol is Protocol.DASH
        assert len(manifest.video_tracks) == len(small_asset.video_tracks)
        assert len(manifest.audio_tracks) == len(small_asset.audio_tracks)

    def test_declared_bitrates(self, builder, small_asset):
        manifest = parse_mpd(builder.mpd(), builder.mpd_url)
        got = [t.declared_bitrate_bps for t in manifest.video_tracks]
        expected = [int(t.declared_bitrate_bps) for t in small_asset.video_tracks]
        assert got == pytest.approx(expected, abs=1.0)

    def test_parse_any_detects_dash(self, builder):
        manifest = parse_any_manifest(builder.mpd(), builder.mpd_url)
        assert manifest.protocol is Protocol.DASH

    def test_segments_availability_by_addressing(self, builder):
        manifest = parse_mpd(builder.mpd(), builder.mpd_url)
        track = manifest.video_tracks[0]
        if builder.addressing is SegmentAddressing.INLINE:
            assert track.segments is not None
            assert track.has_segment_sizes
        else:
            assert track.segments is None
            assert track.index_byte_range is not None
            assert track.index_url == track.media_url

    def test_inline_sizes_match_ground_truth(self, small_asset):
        builder = DashBuilder(base_url="https://cdn.test", asset=small_asset,
                              addressing=SegmentAddressing.INLINE)
        manifest = parse_mpd(builder.mpd(), builder.mpd_url)
        for info, track in zip(manifest.video_tracks, small_asset.video_tracks):
            assert info.segments is not None
            for seg_info, seg in zip(info.segments, track.segments):
                assert seg_info.size_bytes == seg.size_bytes
                assert seg_info.duration_s == pytest.approx(seg.duration_s,
                                                            abs=0.002)

    def test_sidx_segments_match_ground_truth(self, small_asset):
        builder = DashBuilder(base_url="https://cdn.test", asset=small_asset,
                              addressing=SegmentAddressing.SIDX)
        manifest = parse_mpd(builder.mpd(), builder.mpd_url)
        for info, track in zip(manifest.video_tracks, small_asset.video_tracks):
            sidx = parse_sidx(builder.sidx(track).encode())
            segments = segments_from_sidx(info, sidx)
            assert [seg.size_bytes for seg in segments] == \
                [seg.size_bytes for seg in track.segments]
            # Byte ranges must match the server's layout exactly.
            for seg in segments:
                assert seg.byte_range == builder.byte_range_of(track, seg.index)

    def test_byte_ranges_are_disjoint_and_ordered(self, small_asset):
        builder = DashBuilder(base_url="https://cdn.test", asset=small_asset)
        track = small_asset.video_tracks[0]
        previous_end = builder.header_size(track) - 1
        for segment in track.segments:
            start, end = builder.byte_range_of(track, segment.index)
            assert start == previous_end + 1
            assert end >= start
            previous_end = end
        assert previous_end == builder.media_file_size(track) - 1

    def test_average_actual_bitrate_exposed_for_inline(self, small_asset):
        builder = DashBuilder(base_url="https://cdn.test", asset=small_asset,
                              addressing=SegmentAddressing.INLINE)
        manifest = parse_mpd(builder.mpd(), builder.mpd_url)
        track = manifest.video_tracks[-1]
        avg = track.average_actual_bitrate_bps()
        assert avg is not None
        assert avg < track.declared_bitrate_bps


class TestMpdErrors:
    def test_not_xml(self):
        with pytest.raises(ManifestError, match="not well-formed"):
            parse_mpd("not xml at all <", "u")

    def test_wrong_root(self):
        with pytest.raises(ManifestError, match="not an MPD"):
            parse_mpd("<foo/>", "u")

    def test_segments_from_sidx_requires_index_range(self, small_asset):
        builder = DashBuilder(base_url="https://cdn.test", asset=small_asset,
                              addressing=SegmentAddressing.INLINE)
        manifest = parse_mpd(builder.mpd(), builder.mpd_url)
        sidx = builder.sidx(small_asset.video_tracks[0])
        with pytest.raises(ManifestError, match="not sidx-addressed"):
            segments_from_sidx(manifest.video_tracks[0], sidx)
