"""Integration tests: every Table 2 issue and headline claim emerges.

These are the repository's scientific regression tests — each asserts
the *shape* of a paper finding (who wins, direction, rough factor), not
absolute numbers.  They run shortened versions of the benchmark
experiments.
"""

import pytest

from repro.analysis.whatif import analyze_segment_replacement
from tests.support import run_session
from repro.media.track import StreamType
from repro.net.schedule import ConstantSchedule, StepSchedule
from repro.net.traces import generate_trace
from repro.player.config import SchedulerStrategy
from repro.services import exoplayer_config
from repro.services import sintel_hls_spec as make_sintel_spec
from repro.services import testcard_dash_spec as make_testcard_spec
from repro.util import kbps, mbps


@pytest.fixture(scope="module")
def lowest_trace():
    return generate_trace(1, 600)


@pytest.fixture(scope="module")
def low_trace():
    return generate_trace(2, 600)


class TestHighBottomTrack:
    """Table 2 row 1: H5 stalls on low-bandwidth profiles; low-bottom
    services (D2, D3) do not (section 3.1)."""

    def test_h5_stalls_where_d2_does_not(self, lowest_trace):
        h5 = run_session("H5", lowest_trace, duration_s=600.0)
        d2 = run_session("D2", lowest_trace, duration_s=600.0)
        assert h5.qoe.total_stall_s > 10.0
        assert d2.qoe.total_stall_s < h5.qoe.total_stall_s / 3


class TestAvDesync:
    """Table 2 row 3 / Figure 6: D1 stalls with plenty of video but no
    audio buffered; the A/V download progress drifts apart."""

    def test_d1_desync_stall(self, lowest_trace):
        result = run_session("D1", lowest_trace, duration_s=600.0)
        stalls = result.ui.stall_intervals()
        assert stalls
        estimator = result.buffer_estimator
        at = stalls[0].start_at
        video = estimator.occupancy_at(at, StreamType.VIDEO)
        audio = estimator.occupancy_at(at, StreamType.AUDIO)
        assert video > 30.0
        assert audio < video / 3

    def test_d1_progress_gap(self, lowest_trace):
        result = run_session("D1", lowest_trace, duration_s=600.0)
        gaps = [
            result.analyzer.downloaded_duration_until(t, StreamType.VIDEO)
            - result.analyzer.downloaded_duration_until(t, StreamType.AUDIO)
            for t in range(60, 600, 30)
        ]
        assert sum(gaps) / len(gaps) > 20.0  # tens of seconds apart

    def test_synced_service_keeps_streams_together(self, lowest_trace):
        d2 = run_session("D2", lowest_trace, duration_s=600.0)
        d1 = run_session("D1", lowest_trace, duration_s=600.0)

        def mean_gap(result):
            gaps = [
                abs(result.analyzer.downloaded_duration_until(
                        t, StreamType.VIDEO)
                    - result.analyzer.downloaded_duration_until(
                        t, StreamType.AUDIO))
                for t in range(60, 600, 30)
            ]
            return sum(gaps) / len(gaps)

        assert mean_gap(d2) < 10.0
        assert mean_gap(d2) < mean_gap(d1) / 2


class TestNonPersistentTcp:
    """Table 2 row 4: H2/H3/H5 lose quality to per-request reconnects."""

    def test_persistence_improves_quality(self):
        from repro.services import get_service
        import dataclasses
        spec = get_service("H2")
        fixed = dataclasses.replace(spec, name="H2-fixed", persistent=True)
        trace = generate_trace(6, 300)
        broken_result = run_session(spec, trace, duration_s=300.0)
        fixed_result = run_session(fixed, trace, duration_s=300.0)
        assert fixed_result.qoe.average_displayed_bitrate_bps >= \
            broken_result.qoe.average_displayed_bitrate_bps
        assert fixed_result.qoe.total_stall_s <= \
            broken_result.qoe.total_stall_s + 1.0


class TestLowResumeThreshold:
    """Table 2 row 5 / Figure 7: S2's 4 s resume threshold stalls; a
    higher resume threshold fixes it on the same traces."""

    def test_s2_stalls_more_than_d4(self, low_trace):
        s2 = run_session("S2", low_trace, duration_s=600.0)
        d4 = run_session("D4", low_trace, duration_s=600.0)
        assert s2.qoe.stall_count > d4.qoe.stall_count

    def test_raising_resume_threshold_fixes_s2(self, low_trace):
        import dataclasses
        from repro.services import get_service
        spec = get_service("S2")
        fixed = dataclasses.replace(spec, name="S2-fixed",
                                    resuming_threshold_s=20.0)
        broken_result = run_session(spec, low_trace, duration_s=600.0)
        fixed_result = run_session(fixed, low_trace, duration_s=600.0)
        assert fixed_result.qoe.total_stall_s < \
            max(broken_result.qoe.total_stall_s, 1.0)


class TestStartupStall:
    """Table 2 row 6 / Figure 14: H3 stalls right after startup at a
    bandwidth below its 1.05 Mbps startup track; H2 does not."""

    def test_h3_early_stall_h2_clean(self):
        schedule = ConstantSchedule(kbps(800))
        h3 = run_session("H3", schedule, duration_s=120.0,
                         content_duration_s=300.0)
        h2 = run_session("H2", schedule, duration_s=120.0,
                         content_duration_s=300.0)
        h3_early = [i for i in h3.ui.stall_intervals() if i.start_at < 60]
        h2_early = [i for i in h2.ui.stall_intervals() if i.start_at < 60]
        assert h3_early
        assert not h2_early

    def test_more_startup_segments_reduce_stalls(self):
        """Figure 15's headline: 2-3 startup segments cut the stall ratio
        substantially vs 1 (evaluated over the 50 one-minute profiles)."""
        from repro.blackbox.startup_sweep import one_minute_profiles
        spec = make_testcard_spec(8.0)
        chunks = one_minute_profiles()

        def stall_runs(count):
            stalls = 0
            for chunk in chunks:
                result = run_session(
                    spec, chunk, duration_s=60.0,
                    player_config=exoplayer_config(
                        startup_buffer_s=8.0 * count,
                        startup_min_segments=count,
                        startup_track_kbps=1050.0,
                    ),
                )
                if result.true_stall_count > 0 or not result.playback_started:
                    stalls += 1
            return stalls

        assert stall_runs(3) < stall_runs(1)


class TestUnstableSelection:
    """Table 2 row 7 / Figure 8: D1 keeps switching at constant 500 kbps
    while every other service converges."""

    def test_d1_oscillates_others_converge(self):
        schedule = ConstantSchedule(kbps(500))

        def steady_switches(name):
            result = run_session(name, schedule, duration_s=300.0,
                                 content_duration_s=500.0)
            downloads = [d for d in
                         result.analyzer.media_downloads(StreamType.VIDEO)
                         if d.completed_at > 120.0]
            levels = [d.level for d in downloads]
            return sum(1 for a, b in zip(levels, levels[1:]) if a != b)

        assert steady_switches("D1") >= 5
        assert steady_switches("H6") <= 2
        assert steady_switches("D2") <= 2


class TestRampDownWithHighBuffer:
    """Table 2 row 8: H4 drops its track immediately on a bandwidth dip
    despite minutes of buffer; H2 (guarded) rides the dip out."""

    def test_h4_immediate_h2_guarded(self):
        from repro.blackbox import probe_step_response
        h4 = probe_step_response("H4", high_bps=mbps(5), low_bps=kbps(500),
                                 step_at_s=240.0, duration_s=600.0)
        assert h4.downswitch_at is not None
        assert h4.immediate_downswitch
        h2 = probe_step_response("H2", high_bps=mbps(5), low_bps=kbps(500),
                                 step_at_s=240.0, duration_s=600.0)
        assert h2.downswitch_at is None or not h2.immediate_downswitch


class TestSegmentReplacement:
    """Section 4.1: naive SR wastes data for marginal gain; improved SR
    converts similar data into large low-quality-time reductions."""

    def test_h4_sr_wastes_data(self, low_trace):
        result = run_session("H4", low_trace, duration_s=600.0)
        whatif = analyze_segment_replacement(result.analyzer.downloads,
                                             result.ui)
        if whatif.sr_detected:
            assert whatif.extra_bytes > 0
            assert whatif.data_increase_fraction < 3.0  # sane

    def test_improved_sr_only_upgrades(self):
        spec = make_testcard_spec(4.0)
        trace = generate_trace(4, 600)
        result = run_session(spec, trace, duration_s=600.0,
                             player_config=exoplayer_config(sr="improved"))
        whatif = analyze_segment_replacement(result.analyzer.downloads,
                                             result.ui)
        assert whatif.sr_detected
        assert whatif.fraction_replacements("higher") == 1.0

    def test_improved_sr_reduces_low_quality_time(self):
        spec = make_testcard_spec(4.0)
        trace = generate_trace(3, 600)
        base = run_session(spec, trace, duration_s=600.0,
                           player_config=exoplayer_config(sr="none"))
        improved = run_session(spec, trace, duration_s=600.0,
                               player_config=exoplayer_config(sr="improved"))
        low_base = base.qoe.time_at_or_below_height(396)
        low_improved = improved.qoe.time_at_or_below_height(396)
        assert low_improved < low_base

    def test_capped_sr_wastes_less(self):
        spec = make_testcard_spec(4.0)
        trace = generate_trace(4, 600)
        improved = run_session(spec, trace, duration_s=600.0,
                               player_config=exoplayer_config(sr="improved"))
        capped = run_session(spec, trace, duration_s=600.0,
                             player_config=exoplayer_config(sr="capped"))
        w_improved = analyze_segment_replacement(
            improved.analyzer.downloads, improved.ui)
        w_capped = analyze_segment_replacement(
            capped.analyzer.downloads, capped.ui)
        assert w_capped.wasted_bytes <= w_improved.wasted_bytes
        # capped never touches segments above 720p
        for event in w_capped.replacements:
            pass  # old height not carried in event; waste bound suffices


class TestDeclaredVsActual:
    """Section 4.2: D2's declared-only adaptation under-utilises a VBR
    ladder; actual-bitrate-aware ExoPlayer does far better on the same
    stream (Figure 13)."""

    def test_d2_low_utilization(self):
        result = run_session("D2", ConstantSchedule(mbps(2)),
                             duration_s=300.0, content_duration_s=600.0)
        steady = [f for f in result.proxy.completed_flows()
                  if f.started_at > 60.0]
        utilization = sum(f.size_bytes or 0 for f in steady) * 8 / 240.0 / mbps(2)
        assert utilization < 0.45

    def test_actual_aware_doubles_bitrate_on_sintel(self):
        spec = make_sintel_spec()
        trace = generate_trace(3, 600)
        declared = run_session(
            spec, trace, duration_s=600.0,
            player_config=exoplayer_config(
                use_actual=False, strategy=SchedulerStrategy.SINGLE,
                connections=1),
        )
        actual = run_session(
            spec, trace, duration_s=600.0,
            player_config=exoplayer_config(
                use_actual=True, strategy=SchedulerStrategy.SINGLE,
                connections=1),
        )
        gain = (actual.qoe.average_displayed_bitrate_bps
                / declared.qoe.average_displayed_bitrate_bps)
        assert gain > 1.3
        # ... without a stall explosion (paper: stalls stay similar)
        assert actual.qoe.total_stall_s <= declared.qoe.total_stall_s + 15.0
