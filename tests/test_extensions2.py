"""Tests for catalogues, schedule combinators, QoE model, capture
serialization, and fault injection."""

import pytest

from repro.analysis.faults import FlakyOriginHandler
from repro.analysis.qoe import compute_qoe
from repro.analysis.qoemodel import QoeModelWeights, QoeScore, score_session
from repro.analysis.serialize import (
    capture_from_json,
    capture_to_json,
    reanalyze,
)
from repro.core.session import Session
from tests.support import run_session
from repro.media.catalog import (
    build_catalog,
    check_catalog_consistency,
)
from repro.media.track import StreamType
from repro.net.emulator import (
    ClampedSchedule,
    ConcatSchedule,
    JitteredSchedule,
    ScaledSchedule,
)
from repro.net.http import HttpRequest, HttpStatus
from repro.net.schedule import ConstantSchedule, StepSchedule
from repro.server import OriginServer
from repro.services import build_service, get_service
from repro.util import mbps

from tests.conftest import quick_session


class TestCatalog:
    @pytest.fixture(scope="class")
    def catalog(self):
        return build_catalog(get_service("D2"), title_count=4,
                             duration_s=120.0)

    def test_titles_distinct_content(self, catalog):
        sizes = {
            tuple(seg.size_bytes for seg in title.asset.video_tracks[0].segments)
            for title in catalog.titles
        }
        assert len(sizes) == len(catalog.titles)

    def test_titles_share_settings(self, catalog):
        consistency = check_catalog_consistency(catalog)
        assert consistency.consistent
        assert consistency.ladders_identical
        assert consistency.segment_durations_identical
        assert consistency.audio_layout_identical
        assert consistency.max_avg_bitrate_spread < 0.8

    def test_titles_hostable_together(self, catalog):
        server = OriginServer()
        for title in catalog.titles:
            server.host_dash(title.asset, "https://cdn.test")

    def test_inconsistency_detected(self):
        import dataclasses
        spec_a = get_service("D2")
        spec_b = dataclasses.replace(spec_a, ladder_kbps=(300, 600, 1200))
        catalog_a = build_catalog(spec_a, title_count=1, duration_s=60.0)
        catalog_b = build_catalog(spec_b, title_count=1, duration_s=60.0)
        from repro.media.catalog import Catalog
        mixed = Catalog(service_name="mixed",
                        titles=catalog_a.titles + catalog_b.titles)
        assert not check_catalog_consistency(mixed).ladders_identical

    def test_all_services_catalogs_consistent(self):
        """The paper's section 3.1 finding holds for every service."""
        for name in ("H1", "D1", "S2"):
            catalog = build_catalog(get_service(name), title_count=3,
                                    duration_s=90.0)
            assert check_catalog_consistency(catalog).consistent, name


class TestScheduleCombinators:
    def test_scaled(self):
        schedule = ScaledSchedule(ConstantSchedule(mbps(2)), 0.5)
        assert schedule.bandwidth_at(10.0) == mbps(1)

    def test_clamped(self):
        inner = StepSchedule.single_step(mbps(10), mbps(0.1), 50.0)
        schedule = ClampedSchedule(inner, floor_bps=mbps(0.5),
                                   ceiling_bps=mbps(5))
        assert schedule.bandwidth_at(0.0) == mbps(5)
        assert schedule.bandwidth_at(60.0) == mbps(0.5)

    def test_clamped_validation(self):
        with pytest.raises(ValueError):
            ClampedSchedule(ConstantSchedule(1.0), floor_bps=2.0,
                            ceiling_bps=1.0)

    def test_concat(self):
        schedule = ConcatSchedule([
            (ConstantSchedule(mbps(1)), 10.0),
            (ConstantSchedule(mbps(2)), 10.0),
            (ConstantSchedule(mbps(3)), 10.0),
        ])
        assert schedule.bandwidth_at(5.0) == mbps(1)
        assert schedule.bandwidth_at(15.0) == mbps(2)
        assert schedule.bandwidth_at(25.0) == mbps(3)
        assert schedule.bandwidth_at(500.0) == mbps(3)  # last extends

    def test_concat_offsets_inner_time(self):
        inner = StepSchedule.single_step(mbps(1), mbps(9), 5.0)
        schedule = ConcatSchedule([
            (ConstantSchedule(mbps(2)), 100.0),
            (inner, 100.0),
        ])
        assert schedule.bandwidth_at(102.0) == mbps(1)  # inner t=2
        assert schedule.bandwidth_at(106.0) == mbps(9)  # inner t=6

    def test_jittered_deterministic_and_bounded(self):
        schedule = JitteredSchedule(ConstantSchedule(mbps(2)), sigma=0.1,
                                    seed=3)
        again = JitteredSchedule(ConstantSchedule(mbps(2)), sigma=0.1, seed=3)
        values = [schedule.bandwidth_at(float(t)) for t in range(100)]
        assert values == [again.bandwidth_at(float(t)) for t in range(100)]
        assert all(mbps(2) * 0.7 <= v <= mbps(2) * 1.3 for v in values)
        assert len(set(values)) > 10

    def test_combinators_drive_a_session(self):
        schedule = JitteredSchedule(
            ClampedSchedule(
                ScaledSchedule(ConstantSchedule(mbps(4)), 0.8),
                floor_bps=mbps(0.5), ceiling_bps=mbps(5),
            ),
            sigma=0.05, seed=1,
        )
        result = run_session("H6", schedule, duration_s=90.0,
                             content_duration_s=90.0)
        assert result.playback_started


class TestQoeModel:
    def test_score_components(self, h1_session):
        score = score_session(h1_session.qoe)
        assert isinstance(score, QoeScore)
        assert score.quality > 0
        assert score.stall_cost == 0.0
        assert score.total <= score.quality

    def test_stalls_hurt(self, h1_session, s2_session):
        # same-ish conditions; S2 had a stall in its fixture run or not —
        # instead compare synthetic reports derived from the same session.
        base = score_session(h1_session.qoe)
        harsh = QoeModelWeights(stall_penalty_per_s=1000.0)
        assert score_session(h1_session.qoe, harsh).total == \
            pytest.approx(base.total + base.stall_cost
                          - 1000.0 * h1_session.qoe.total_stall_s
                          / max(h1_session.qoe.played_s / 60.0, 1e-9))

    def test_concavity(self):
        """Doubling a low bitrate helps as much as doubling a high one."""
        from repro.analysis.qoe import DisplayedSegment, QoeReport

        def report(bitrate):
            return QoeReport(
                startup_delay_s=1.0, stall_count=0, total_stall_s=0.0,
                played_s=60.0,
                displayed=[DisplayedSegment(
                    index=0, start_s=0.0, duration_s=60.0,
                    played_duration_s=60.0, level=0,
                    declared_bitrate_bps=bitrate, height=360,
                )],
            )

        low_gain = (score_session(report(400e3)).quality
                    - score_session(report(200e3)).quality)
        high_gain = (score_session(report(4000e3)).quality
                     - score_session(report(2000e3)).quality)
        assert low_gain == pytest.approx(high_gain)

    def test_never_started_is_heavily_penalised(self):
        from repro.analysis.qoe import QoeReport

        report = QoeReport(startup_delay_s=None, stall_count=0,
                           total_stall_s=0.0, played_s=0.0)
        assert score_session(report).total < 0


class TestSerialization:
    def test_round_trip(self, h1_session):
        payload = capture_to_json(
            h1_session.proxy.flows, h1_session.player.ui_samples,
            metadata={"service": "H1"},
        )
        flows, samples, metadata = capture_from_json(payload)
        assert metadata == {"service": "H1"}
        assert len(flows) == len(h1_session.proxy.flows)
        assert len(samples) == len(h1_session.player.ui_samples)
        original = h1_session.proxy.flows[0]
        restored = flows[0]
        assert restored.url == original.url
        assert restored.text == original.text
        assert restored.connection_id == original.connection_id

    def test_reanalysis_matches_live_analysis(self, h1_session):
        payload = capture_to_json(
            h1_session.proxy.flows, h1_session.player.ui_samples
        )
        analyzer, ui = reanalyze(payload)
        qoe = compute_qoe(analyzer, ui)
        live = h1_session.qoe
        assert qoe.average_displayed_bitrate_bps == pytest.approx(
            live.average_displayed_bitrate_bps
        )
        assert qoe.stall_count == live.stall_count
        assert qoe.startup_delay_s == live.startup_delay_s
        assert len(analyzer.downloads) == len(h1_session.analyzer.downloads)

    def test_binary_payloads_survive(self, d3_session):
        payload = capture_to_json(
            d3_session.proxy.flows, d3_session.player.ui_samples
        )
        analyzer, _ = reanalyze(payload)
        # the sidx (binary) data must still parse into segment maps
        assert analyzer.media_downloads(StreamType.VIDEO)

    def test_version_check(self):
        import json
        with pytest.raises(ValueError, match="format version"):
            capture_from_json(json.dumps({"format_version": 99}))


class TestFaultInjection:
    def _run_with_error_rate(self, error_rate):
        server = OriginServer()
        built = build_service("H6", server, duration_s=120.0)
        flaky = FlakyOriginHandler(server, error_rate=error_rate, seed=5)
        session = Session(built, server, ConstantSchedule(mbps(4)))
        session.proxy.origin = flaky
        return flaky, session.run(120.0)

    def test_player_survives_flaky_origin(self):
        flaky, result = self._run_with_error_rate(0.15)
        assert flaky.injected_errors > 0
        assert result.playback_started
        # retried segments eventually arrive; playback progresses
        assert result.qoe.played_s > 60.0

    def test_errors_degrade_but_do_not_crash(self):
        flaky, result = self._run_with_error_rate(0.5)
        assert flaky.injected_errors > 5
        assert result.playback_started

    def test_zero_rate_injects_nothing(self):
        flaky, result = self._run_with_error_rate(0.0)
        assert flaky.injected_errors == 0
        assert result.true_stall_count == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            FlakyOriginHandler(OriginServer(), error_rate=1.5)
