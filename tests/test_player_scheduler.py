"""Connection scheduler tests (section 3.2 behaviours)."""

import pytest

from repro.media.track import StreamType
from repro.net.clock import Clock
from repro.net.http import ResponsePlan
from repro.net.network import Network
from repro.net.schedule import ConstantSchedule
from repro.player.scheduler import (
    FetchJob,
    JobKind,
    PartitionedParallelScheduler,
    SingleConnectionScheduler,
    SplitScheduler,
    SyncedAvScheduler,
)
from repro.util import mbps


class _FixedServer:
    """Serves 40 KB for anything."""

    def handle(self, request):
        if request.byte_range is not None:
            return ResponsePlan.ok_opaque(request.range_length, partial=True)
        return ResponsePlan.ok_opaque(40_000)


def make_network():
    clock = Clock(dt=0.1)
    network = Network(clock, _FixedServer(), ConstantSchedule(mbps(8)))
    return clock, network


def run_until(clock, network, predicate, max_s=30.0):
    while clock.now < max_s:
        network.advance(clock.dt)
        clock.tick()
        if predicate():
            return True
    return False


def job(stream=StreamType.VIDEO, on_complete=None, index=0, *, kind=JobKind.SEGMENT,
        byte_range=None):
    results = []
    return FetchJob(
        kind=kind, stream_type=stream, url=f"http://x/{stream.value}/{index}",
        on_complete=on_complete or (lambda j, r: results.append(r)),
        index=index, level=0, byte_range=byte_range,
    )


class TestSingleConnection:
    def test_one_at_a_time(self):
        clock, network = make_network()
        scheduler = SingleConnectionScheduler(network)
        assert scheduler.slots_for(StreamType.VIDEO) == 1
        done = []
        scheduler.submit(job(on_complete=lambda j, r: done.append(r)))
        assert scheduler.slots_for(StreamType.VIDEO) == 0
        with pytest.raises(RuntimeError):
            scheduler.submit(job(index=1))
        assert run_until(clock, network, lambda: done)
        assert scheduler.slots_for(StreamType.VIDEO) == 1
        assert done[0].success

    def test_persistent_reuses_connection(self):
        clock, network = make_network()
        scheduler = SingleConnectionScheduler(network, persistent=True)
        for i in range(3):
            done = []
            scheduler.submit(job(index=i, on_complete=lambda j, r: done.append(r)))
            assert run_until(clock, network, lambda: done)
        assert network.connections[0].connects == 1

    def test_non_persistent_reconnects_every_request(self):
        clock, network = make_network()
        scheduler = SingleConnectionScheduler(network, persistent=False)
        for i in range(3):
            done = []
            scheduler.submit(job(index=i, on_complete=lambda j, r: done.append(r)))
            assert run_until(clock, network, lambda: done)
        assert network.connections[0].connects == 3

    def test_non_persistent_is_slower(self):
        def total_time(persistent):
            clock, network = make_network()
            scheduler = SingleConnectionScheduler(network, persistent=persistent)
            for i in range(6):
                done = []
                scheduler.submit(job(index=i,
                                     on_complete=lambda j, r: done.append(r)))
                run_until(clock, network, lambda: done)
            return clock.now

        assert total_time(persistent=False) > total_time(persistent=True)


class TestSyncedAv:
    def test_one_slot_per_stream(self):
        clock, network = make_network()
        scheduler = SyncedAvScheduler(network, connections=2)
        scheduler.submit(job(StreamType.VIDEO))
        assert scheduler.slots_for(StreamType.VIDEO) == 0
        assert scheduler.slots_for(StreamType.AUDIO) == 1
        scheduler.submit(job(StreamType.AUDIO))
        assert scheduler.slots_for(StreamType.AUDIO) == 0

    def test_completion_frees_slot(self):
        clock, network = make_network()
        scheduler = SyncedAvScheduler(network, connections=2)
        done = []
        scheduler.submit(job(StreamType.VIDEO,
                             on_complete=lambda j, r: done.append(r)))
        assert run_until(clock, network, lambda: done)
        assert scheduler.slots_for(StreamType.VIDEO) == 1


class TestPartitioned:
    def test_parallel_video_segments(self):
        clock, network = make_network()
        scheduler = PartitionedParallelScheduler(network, 5, 1)
        assert scheduler.slots_for(StreamType.VIDEO) == 5
        for i in range(5):
            scheduler.submit(job(StreamType.VIDEO, index=i))
        assert scheduler.slots_for(StreamType.VIDEO) == 0
        assert scheduler.slots_for(StreamType.AUDIO) == 1
        assert scheduler.inflight(StreamType.VIDEO) == 5

    def test_pools_are_isolated(self):
        clock, network = make_network()
        scheduler = PartitionedParallelScheduler(network, 2, 1)
        scheduler.submit(job(StreamType.AUDIO))
        assert scheduler.slots_for(StreamType.AUDIO) == 0
        assert scheduler.slots_for(StreamType.VIDEO) == 2

    def test_pool_validation(self):
        clock, network = make_network()
        with pytest.raises(ValueError):
            PartitionedParallelScheduler(network, 0, 1)


class TestSplit:
    def test_segment_split_across_connections(self):
        clock, network = make_network()
        scheduler = SplitScheduler(network, connections=3)
        done = []
        scheduler.submit(job(byte_range=(0, 299_999),
                             on_complete=lambda j, r: done.append(r)))
        busy = [c for c in network.connections if c.busy]
        assert len(busy) == 3
        assert run_until(clock, network, lambda: done)
        result = done[0]
        assert result.success
        assert result.size_bytes == 300_000

    def test_one_job_at_a_time(self):
        clock, network = make_network()
        scheduler = SplitScheduler(network, connections=3)
        scheduler.submit(job(byte_range=(0, 1000)))
        assert scheduler.slots_for(StreamType.VIDEO) == 0
        with pytest.raises(RuntimeError):
            scheduler.submit(job(index=1, byte_range=(0, 1000)))

    def test_whole_resource_falls_back_to_single(self):
        clock, network = make_network()
        scheduler = SplitScheduler(network, connections=3)
        done = []
        scheduler.submit(job(on_complete=lambda j, r: done.append(r)))
        busy = [c for c in network.connections if c.busy]
        assert len(busy) == 1
        assert run_until(clock, network, lambda: done)

    def test_split_completes_only_when_all_parts_done(self):
        clock, network = make_network()
        scheduler = SplitScheduler(network, connections=3)
        done = []
        scheduler.submit(job(byte_range=(0, 599_999),
                             on_complete=lambda j, r: done.append(r)))
        network.advance(clock.dt)
        clock.tick()
        assert not done  # parts still moving
        assert run_until(clock, network, lambda: done)
        # timings aggregate over the whole fan-out
        assert done[0].completed_at > done[0].started_at

    def test_metadata_job_single_connection(self):
        clock, network = make_network()
        scheduler = SplitScheduler(network, connections=3)
        done = []
        scheduler.submit(job(kind=JobKind.MANIFEST,
                             on_complete=lambda j, r: done.append(r)))
        busy = [c for c in network.connections if c.busy]
        assert len(busy) == 1
