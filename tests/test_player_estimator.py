"""Throughput estimator behaviours."""

import pytest

from repro.player.estimator import (
    AggregateWindowEstimator,
    EwmaEstimator,
    LastSampleEstimator,
    SlidingWindowEstimator,
)


class TestEwma:
    def test_empty(self):
        assert EwmaEstimator().estimate_bps() is None

    def test_first_sample_taken_directly(self):
        estimator = EwmaEstimator(alpha=0.5)
        estimator.add_sample(125_000, 1.0)  # 1 Mbps
        assert estimator.estimate_bps() == pytest.approx(1_000_000)

    def test_smoothing(self):
        estimator = EwmaEstimator(alpha=0.5)
        estimator.add_sample(125_000, 1.0)
        estimator.add_sample(250_000, 1.0)
        assert estimator.estimate_bps() == pytest.approx(1_500_000)

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            EwmaEstimator(alpha=0.0)

    def test_sample_count(self):
        estimator = EwmaEstimator()
        estimator.add_sample(1, 1.0)
        estimator.add_sample(1, 1.0)
        assert estimator.sample_count() == 2


class TestSlidingWindow:
    def test_harmonic_mean_weights_slow_downloads(self):
        estimator = SlidingWindowEstimator(window=2)
        estimator.add_sample(125_000, 1.0)   # 1 Mbps for 1 s
        estimator.add_sample(125_000, 4.0)   # 0.25 Mbps for 4 s
        # bytes-weighted: 250 KB over 5 s = 0.4 Mbps
        assert estimator.estimate_bps() == pytest.approx(400_000)

    def test_window_evicts_old(self):
        estimator = SlidingWindowEstimator(window=1)
        estimator.add_sample(125_000, 1.0)
        estimator.add_sample(250_000, 1.0)
        assert estimator.estimate_bps() == pytest.approx(2_000_000)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            SlidingWindowEstimator(window=0)


class TestLastSample:
    def test_memoryless(self):
        estimator = LastSampleEstimator()
        estimator.add_sample(125_000, 1.0)
        estimator.add_sample(250_000, 1.0)
        assert estimator.estimate_bps() == pytest.approx(2_000_000)


class TestAggregateWindow:
    def test_sequential_samples_behave_like_goodput(self):
        estimator = AggregateWindowEstimator(window=4)
        estimator.add_interval(125_000, 0.0, 1.0)
        estimator.add_interval(125_000, 1.0, 2.0)
        assert estimator.estimate_bps() == pytest.approx(1_000_000)

    def test_parallel_downloads_aggregate(self):
        """Five concurrent downloads each see 1/5 of the link; the
        aggregate estimator still reports the full link rate."""
        estimator = AggregateWindowEstimator(window=5)
        for _ in range(5):
            estimator.add_interval(125_000, 0.0, 1.0)  # all overlapping
        assert estimator.estimate_bps() == pytest.approx(5_000_000)

    def test_gap_between_intervals_excluded(self):
        estimator = AggregateWindowEstimator(window=2)
        estimator.add_interval(125_000, 0.0, 1.0)
        estimator.add_interval(125_000, 10.0, 11.0)  # long idle gap
        # Union time is 2 s, not 11 s.
        assert estimator.estimate_bps() == pytest.approx(1_000_000)

    def test_fallback_add_sample(self):
        estimator = AggregateWindowEstimator(window=2)
        estimator.add_sample(125_000, 1.0)
        assert estimator.estimate_bps() == pytest.approx(1_000_000)

    def test_empty(self):
        assert AggregateWindowEstimator().estimate_bps() is None

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            AggregateWindowEstimator(window=0)
