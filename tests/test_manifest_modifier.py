"""Manifest cipher and the Figure 12 MPD variants."""

import pytest

from repro.manifest import (
    ManifestCipher,
    ManifestError,
    drop_lowest_track_variant,
    parse_any_manifest,
    parse_mpd,
    shift_tracks_variant,
)
from repro.manifest.dash import DashBuilder, SegmentAddressing


@pytest.fixture(scope="module")
def mpd_text(small_asset):
    return DashBuilder(base_url="https://cdn.test", asset=small_asset,
                       addressing=SegmentAddressing.INLINE).mpd()


class TestCipher:
    def test_round_trip(self):
        cipher = ManifestCipher()
        text = "#EXTM3U\nsome manifest"
        assert cipher.decrypt(cipher.encrypt(text)) == text

    def test_ciphertext_is_not_parseable(self, mpd_text):
        ciphertext = ManifestCipher().encrypt(mpd_text)
        with pytest.raises(ManifestError):
            parse_any_manifest(ciphertext, "u")

    def test_is_encrypted(self, mpd_text):
        cipher = ManifestCipher()
        assert cipher.is_encrypted(cipher.encrypt(mpd_text))
        assert not cipher.is_encrypted(mpd_text)

    def test_decrypt_rejects_plaintext(self):
        with pytest.raises(ManifestError):
            ManifestCipher().decrypt("plain")

    def test_wrong_key_garbles(self, mpd_text):
        ciphertext = ManifestCipher(key=b"a").encrypt(mpd_text)
        wrong = ManifestCipher(key=b"b")
        try:
            garbled = wrong.decrypt(ciphertext)
        except (ManifestError, UnicodeDecodeError):
            return
        assert garbled != mpd_text


class TestVariants:
    def test_shift_keeps_declared_but_swaps_media(self, mpd_text, small_asset):
        shifted = parse_mpd(shift_tracks_variant(mpd_text), "u")
        original = parse_mpd(mpd_text, "u")
        assert len(shifted.video_tracks) == len(original.video_tracks) - 1
        for i, track in enumerate(shifted.video_tracks):
            original_same_declared = original.video_tracks[i + 1]
            assert track.declared_bitrate_bps == \
                original_same_declared.declared_bitrate_bps
            # but the media (sizes) of the next lower original track
            lower = original.video_tracks[i]
            assert [s.size_bytes for s in track.segments] == \
                [s.size_bytes for s in lower.segments]

    def test_drop_lowest(self, mpd_text):
        dropped = parse_mpd(drop_lowest_track_variant(mpd_text), "u")
        original = parse_mpd(mpd_text, "u")
        assert len(dropped.video_tracks) == len(original.video_tracks) - 1
        assert dropped.video_tracks[0].declared_bitrate_bps == \
            original.video_tracks[1].declared_bitrate_bps
        assert [s.size_bytes for s in dropped.video_tracks[0].segments] == \
            [s.size_bytes for s in original.video_tracks[1].segments]

    def test_variants_align_for_figure12(self, mpd_text):
        """Track i: same declared in both variants, variant-1 media one
        quality level lower — the experiment's precondition."""
        shifted = parse_mpd(shift_tracks_variant(mpd_text), "u")
        dropped = parse_mpd(drop_lowest_track_variant(mpd_text), "u")
        assert len(shifted.video_tracks) == len(dropped.video_tracks)
        for s_track, d_track in zip(shifted.video_tracks, dropped.video_tracks):
            assert s_track.declared_bitrate_bps == d_track.declared_bitrate_bps
            s_bytes = sum(seg.size_bytes for seg in s_track.segments)
            d_bytes = sum(seg.size_bytes for seg in d_track.segments)
            assert s_bytes < d_bytes

    def test_audio_untouched(self, mpd_text):
        shifted = parse_mpd(shift_tracks_variant(mpd_text), "u")
        original = parse_mpd(mpd_text, "u")
        assert len(shifted.audio_tracks) == len(original.audio_tracks)

    def test_shift_requires_two_tracks(self, small_asset):
        single = (
            '<MPD xmlns="urn:mpeg:dash:schema:mpd:2011"><Period>'
            '<AdaptationSet contentType="video">'
            '<Representation id="v0" bandwidth="100"><BaseURL>u</BaseURL>'
            "</Representation></AdaptationSet></Period></MPD>"
        )
        with pytest.raises(ManifestError, match="at least two"):
            shift_tracks_variant(single)

    def test_malformed_input(self):
        with pytest.raises(ManifestError):
            drop_lowest_track_variant("<broken")

    def test_result_still_detected_as_mpd(self, mpd_text):
        out = shift_tracks_variant(mpd_text)
        assert parse_any_manifest(out, "u").protocol.value == "dash"
