"""Event-driven MultiSession: byte-identity against the tick oracle.

The shared-queue event loop must reproduce the lock-step tick loop's
``ClientResult``s exactly — per-client QoE, player event logs, UI
samples, attributed downloads, and the session-level flow capture —
while executing only event instants as real ticks.  The grid here
crosses service combinations with shared-link bandwidth shapes and the
full fault plane, mirroring the single-session identity suite.
"""

from __future__ import annotations

import pytest

from repro.analysis.faults import (
    DeadAirWindow,
    ErrorBurst,
    FaultSpec,
    LatencySpikeWindow,
    SeededErrors,
    SeededTruncation,
)
from repro.analysis.serialize import capture_to_json
from repro.core.fleet import FleetSpec, run_fleet
from repro.core.multi import (
    EventDrivenMultiSession,
    MultiSession,
)
from repro.net.schedule import ConstantSchedule, StepSchedule, TraceSchedule
from repro.server.origin import OriginServer
from repro.services.profiles import build_service, get_service
from repro.util import mbps

DURATION_S = 120.0
CONTENT_S = 60.0

SCHEDULES = {
    "constant": ConstantSchedule(mbps(6)),
    "step_down": StepSchedule.single_step(mbps(8), mbps(1.5), 45.0),
    "trace": TraceSchedule.from_samples(
        [mbps(5), mbps(2), mbps(7), mbps(0.8), mbps(4)], interval_s=20.0
    ),
}

COMBOS = [
    ["H1", "D1"],          # persistent HLS + parallel-pool DASH
    ["H3", "D3", "S1"],    # re-established HLS + split DASH + Smooth
    ["D2", "D2"],          # identical clients (fairness case)
    ["H6", "D1", "D3"],    # three-way contention
]

GRID_FAULTS = FaultSpec(
    error_bursts=(ErrorBurst(start_s=14.0, end_s=17.0),),
    seeded_errors=(SeededErrors(rate=0.06, seed=101),),
    truncation=SeededTruncation(rate=0.08, seed=83),
    dead_air=(DeadAirWindow(21.3, 26.1),),
    latency_spikes=(LatencySpikeWindow(8.0, 12.5, 0.35),),
    reset_times=(19.17, 33.0),
)


def _run_clients(combo, schedule, *, engine, faults=None):
    spec = FleetSpec(
        services=tuple(combo),
        schedule=schedule,
        duration_s=DURATION_S,
        content_duration_s=CONTENT_S,
        faults=faults,
        engine=engine,
    )
    return list(run_fleet(spec, keep_results=True).results)


def _run_pair(combo, schedule, faults=None):
    tick = _run_clients(combo, schedule, engine="tick", faults=faults)
    event = _run_clients(combo, schedule, engine="event", faults=faults)
    return tick, event


def _assert_identical(tick_results, event_results):
    assert len(tick_results) == len(event_results)
    for tick, event in zip(tick_results, event_results):
        assert event.client_id == tick.client_id
        assert event.service_name == tick.service_name
        assert event.qoe == tick.qoe
        assert event.player.state == tick.player.state
        assert event.player.events.events == tick.player.events.events
        assert event.player.ui_samples == tick.player.ui_samples
        assert [d.__dict__ for d in event.analyzer.downloads] == [
            d.__dict__ for d in tick.analyzer.downloads
        ]


@pytest.mark.parametrize("combo", COMBOS, ids=lambda c: "+".join(c))
@pytest.mark.parametrize("schedule_name", sorted(SCHEDULES))
def test_multi_identity_grid(combo, schedule_name):
    tick, event = _run_pair(combo, SCHEDULES[schedule_name])
    _assert_identical(tick, event)


@pytest.mark.parametrize("combo", COMBOS, ids=lambda c: "+".join(c))
def test_multi_identity_under_faults(combo):
    tick, event = _run_pair(
        combo, SCHEDULES["step_down"], faults=GRID_FAULTS
    )
    _assert_identical(tick, event)


def _build_sessions(combo, schedule, faults=None):
    """Two sessions over identical content, one per engine."""
    sessions = []
    for cls in (MultiSession, EventDrivenMultiSession):
        server = OriginServer()
        builts = [
            build_service(
                get_service(name),
                server,
                duration_s=CONTENT_S,
                content_seed=11 + index,
                base_url=f"https://cdn{index}.example.com",
            )
            for index, name in enumerate(combo)
        ]
        sessions.append(cls(builts, server, schedule, faults=faults))
    return sessions


def test_shared_capture_is_byte_identical():
    """The session-level flow capture (all clients interleaved) matches."""
    tick_session, event_session = _build_sessions(
        ["H1", "D3"], SCHEDULES["trace"], faults=GRID_FAULTS
    )
    tick_results = tick_session.run(DURATION_S)
    event_results = event_session.run(DURATION_S)
    _assert_identical(tick_results, event_results)
    tick_capture = capture_to_json(
        tick_session.proxy.flows,
        [s for r in tick_results for s in r.player.ui_samples],
    )
    event_capture = capture_to_json(
        event_session.proxy.flows,
        [s for r in event_results for s in r.player.ui_samples],
    )
    assert event_capture == tick_capture


def test_event_multi_executes_fewer_ticks():
    tick_session, event_session = _build_sessions(
        ["H1", "D1", "D3"], SCHEDULES["step_down"]
    )
    tick_session.run(DURATION_S)
    event_session.run(DURATION_S)
    # Both engines walk the same simulated timeline...
    assert (
        event_session.ticks_executed + event_session.fast_forwarded_ticks
        == tick_session.ticks_executed + tick_session.fast_forwarded_ticks
    )
    # ...but the event loop dispatches only event instants.
    assert event_session.ticks_executed < tick_session.ticks_executed
    assert event_session.events_dispatched == event_session.ticks_executed
    assert event_session.queue.pushed_total > 0
    assert event_session.max_queue_depth >= len(event_session.players)


def test_wake_dirty_check_skips_untouched_players():
    """Bystander players keep their wakes across another client's ticks.

    With per-producer ownership the push volume must scale with state
    changes, not with dispatches x players: well under one push per
    player per dispatched tick.
    """
    _, event_session = _build_sessions(["H1", "D1", "D3"], SCHEDULES["constant"])
    event_session.run(DURATION_S)
    pushes = event_session.queue.pushed_total
    dispatches = event_session.events_dispatched
    players = len(event_session.players)
    assert pushes < dispatches * players


def test_unknown_engine_rejected():
    with pytest.raises(ValueError, match="unknown engine"):
        FleetSpec(
            services=("H1",), schedule=SCHEDULES["constant"],
            duration_s=10.0, engine="warp",
        )


def test_fast_forward_tick_multi_unchanged_by_faults():
    """The tick engine's idle fast-forward stays exact under faults."""
    server_a = OriginServer()
    server_b = OriginServer()

    def _builts(server):
        return [
            build_service(
                get_service(name), server, duration_s=CONTENT_S,
                content_seed=11 + index,
                base_url=f"https://cdn{index}.example.com",
            )
            for index, name in enumerate(["H1", "H6"])
        ]

    plain = MultiSession(
        _builts(server_a), server_a, SCHEDULES["constant"],
        faults=GRID_FAULTS,
    )
    fast = MultiSession(
        _builts(server_b), server_b, SCHEDULES["constant"],
        faults=GRID_FAULTS, fast_forward=True,
    )
    _assert_identical(plain.run(DURATION_S), fast.run(DURATION_S))
    assert fast.fast_forwarded_ticks > 0
