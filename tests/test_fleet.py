"""Fleet layer: spec-first API, churn, population metrics, cache.

The load-bearing guarantees:

* small-N fleets are byte-identical to a hand-built ``MultiSession``
  (the tick oracle) on BOTH engines — the fleet layer adds naming,
  seeding and bookkeeping, never simulation semantics;
* churn (mid-run arrivals/departures) preserves the tick/event
  identity, fast-forward included;
* the same FleetSpec run twice produces ``==`` outcomes and identical
  JSON (the determinism gate CI enforces);
* FleetSpec flows through ``execute()``, the outcome cache and
  pickling like RunSpec does.
"""

from __future__ import annotations

import dataclasses
import json
import pickle

import pytest

from repro.core.fleet import (
    DEVICE_CLASSES,
    FleetSpec,
    get_device_class,
    jain_index,
    run_fleet,
    summarize_population,
)
from repro.core.multi import (
    EventDrivenMultiSession,
    MultiSession,
    run_shared_link,
)
from repro.core.outcome_cache import OutcomeCache
from repro.core.run import execute
from repro.net.schedule import ConstantSchedule, StepSchedule
from repro.server.origin import OriginServer
from repro.services.profiles import build_service, get_service
from repro.util import mbps

DURATION_S = 90.0
CONTENT_S = 60.0
SCHEDULE = ConstantSchedule(mbps(8))


def _oracle_results(names, schedule, engine, duration_s=DURATION_S,
                    content_duration_s=CONTENT_S):
    """What a hand-built MultiSession produces (the pre-fleet recipe)."""
    server = OriginServer()
    builts = []
    for index, name in enumerate(names):
        distinct = dataclasses.replace(
            get_service(name), name=f"{name}#{index}"
        )
        builts.append(build_service(
            distinct, server, duration_s=content_duration_s,
            content_seed=11 + index,
            base_url=f"https://cdn{index}.example.com",
        ))
    cls = EventDrivenMultiSession if engine == "event" else MultiSession
    session = cls(builts, server, schedule)
    return session.run(duration_s)


def _assert_same_clients(fleet_records, oracle_results):
    assert len(fleet_records) == len(oracle_results)
    for record, oracle in zip(fleet_records, oracle_results):
        assert record.client_id == oracle.record.client_id
        assert record.service_name == oracle.record.service_name
        assert record.qoe == oracle.record.qoe
        assert record.final_state == oracle.record.final_state
        assert record.end_reason == oracle.record.end_reason


class TestOracleIdentity:
    @pytest.mark.parametrize("engine", ["tick", "event"])
    def test_small_fleet_matches_hand_built_multisession(self, engine):
        names = ("H1", "D1", "S1")
        spec = FleetSpec(services=names, schedule=SCHEDULE,
                         duration_s=DURATION_S, content_duration_s=CONTENT_S,
                         engine=engine)
        outcome = run_fleet(spec)
        oracle = _oracle_results(names, SCHEDULE, engine)
        _assert_same_clients(outcome.clients, oracle)

    def test_engines_agree_on_step_schedule(self):
        schedule = StepSchedule.single_step(mbps(8), mbps(1.5), 30.0)
        base = FleetSpec(services=("H3", "D3"), schedule=schedule,
                         duration_s=DURATION_S, content_duration_s=CONTENT_S,
                         engine="tick")
        tick = run_fleet(base)
        event = run_fleet(dataclasses.replace(base, engine="event"))
        assert tick.clients == event.clients
        assert tick.population == event.population


class TestChurn:
    CHURN_SPEC = FleetSpec(
        services=("H1", "D1"), clients=6, service_weights=(2.0, 1.0),
        schedule=SCHEDULE, duration_s=DURATION_S,
        content_duration_s=CONTENT_S, arrival_rate_per_s=0.1,
        mean_dwell_s=40.0, churn_seed=3, engine="tick",
    )

    def test_tick_and_event_agree_under_churn(self):
        tick = run_fleet(self.CHURN_SPEC)
        event = run_fleet(
            dataclasses.replace(self.CHURN_SPEC, engine="event")
        )
        assert tick.clients == event.clients
        assert tick.population == event.population

    def test_fast_forward_preserves_churn_identity(self):
        plain = run_fleet(self.CHURN_SPEC)
        jumped = run_fleet(dataclasses.replace(
            self.CHURN_SPEC, engine="event", fast_forward=True
        ))
        assert jumped.clients == plain.clients
        assert jumped.tick_stats.idle_fast_forward_jumps > 0

    def test_roster_is_deterministic_and_seed_sensitive(self):
        first = self.CHURN_SPEC.roster()
        again = self.CHURN_SPEC.roster()
        assert first == again
        other = dataclasses.replace(self.CHURN_SPEC, churn_seed=4).roster()
        assert other != first

    def test_departed_and_unarrived_states(self):
        spec = FleetSpec(
            services=("H1", "H1", "H1"), schedule=SCHEDULE,
            duration_s=30.0, content_duration_s=CONTENT_S, engine="tick",
        )
        # Hand-pin churn through the session layer: client 1 departs at
        # 10 s, client 2 arrives after the horizon (offered, not carried).
        session = _pinned_session(spec, arrivals=[0.0, 0.0, 40.0],
                                  departures=[None, 10.0, None])
        results = session.run(spec.duration_s)
        records = [r.record for r in results]
        assert records[0].final_state in ("playing", "ended", "paused")
        assert records[1].final_state == "departed"
        assert records[2].final_state == "unarrived"
        assert records[2].qoe.total_bytes == 0
        summary = summarize_population(tuple(records))
        assert summary.clients == 3
        assert summary.arrived == 2  # unarrived excluded from percentiles
        assert summary.departed == 1

    def test_multisession_ends_early_when_all_clients_depart(self):
        spec = FleetSpec(services=("H1", "D1"), schedule=SCHEDULE,
                         duration_s=80.0, content_duration_s=CONTENT_S,
                         engine="tick")
        session = _pinned_session(spec, arrivals=[0.0, 0.0],
                                  departures=[10.0, 12.0])
        results = session.run(spec.duration_s)
        assert all(r.record.final_state == "departed" for r in results)
        # The run loop must honour departures, not the full horizon.
        assert session.ticks_executed < int(80.0 / spec.dt)


def _pinned_session(spec, *, arrivals, departures):
    from repro.core.fleet import FleetSession

    fleet = FleetSession(dataclasses.replace(spec))
    cls = (EventDrivenMultiSession if spec.engine == "event"
           else MultiSession)
    return cls(
        [built for built in fleet.session.builts],
        fleet.server,
        spec.resolved_schedule(),
        arrivals=arrivals,
        departures=departures,
    )


class TestDeterminism:
    def test_same_spec_twice_identical_outcome_and_json(self):
        spec = FleetSpec(
            services=("H1", "D1", "S1"), clients=8,
            service_weights=(1.0, 1.0, 1.0), schedule=SCHEDULE,
            duration_s=60.0, content_duration_s=40.0,
            arrival_rate_per_s=0.2, mean_dwell_s=30.0, churn_seed=5,
            engine="event",
        )
        first = run_fleet(spec)
        second = run_fleet(spec)
        assert first == second
        assert (json.dumps(first.to_json(), sort_keys=True)
                == json.dumps(second.to_json(), sort_keys=True))

    def test_client_records_pickle_round_trip(self):
        spec = FleetSpec(services=("H1",), schedule=SCHEDULE,
                         duration_s=30.0, content_duration_s=CONTENT_S)
        outcome = run_fleet(spec)
        clone = pickle.loads(pickle.dumps(outcome))
        assert clone.clients == outcome.clients
        assert clone.population == outcome.population


class TestExecuteIntegration:
    SPEC = FleetSpec(services=("H1", "D1"), schedule=SCHEDULE,
                     duration_s=40.0, content_duration_s=30.0,
                     engine="event")

    def test_execute_serial_path(self):
        outcome = execute([self.SPEC], workers=0)[0]
        assert outcome.population.clients == 2
        assert outcome.results is None  # records only, no live handles

    def test_cache_round_trip(self, tmp_path):
        cache = OutcomeCache(tmp_path)
        first = execute([self.SPEC], workers=0, cache=cache)[0]
        second = execute([self.SPEC], workers=0, cache=cache)[0]
        assert cache.stats().hits == 1
        assert first.clients == second.clients
        assert (json.dumps(first.to_json(), sort_keys=True)
                == json.dumps(second.to_json(), sort_keys=True))

    def test_metrics_surface_population(self):
        outcome = run_fleet(self.SPEC)
        assert outcome.metrics.value("fleet.clients") == 2
        assert outcome.metrics.value(
            "fleet.clients.by_state", state="ended"
        ) == 2


class TestDeviceClasses:
    def test_known_classes(self):
        assert "phone" in DEVICE_CLASSES
        assert get_device_class("tv").config_overrides

    def test_unknown_class_rejected(self):
        with pytest.raises(ValueError, match="toaster"):
            get_device_class("toaster")

    def test_device_overrides_change_behaviour(self):
        base = FleetSpec(services=("H1",), schedule=ConstantSchedule(mbps(3)),
                         duration_s=120.0, content_duration_s=240.0,
                         engine="tick")
        tv = dataclasses.replace(
            base, devices=(get_device_class("tv"),)
        )
        default_outcome = run_fleet(base)
        tv_outcome = run_fleet(tv)
        assert tv_outcome.clients[0].device_class == "tv"
        # A 120 s pause threshold buffers further ahead than 60 s.
        assert (tv_outcome.clients[0].qoe.total_bytes
                >= default_outcome.clients[0].qoe.total_bytes)


class TestShim:
    def test_run_shared_link_warns_and_matches_fleet(self):
        spec = FleetSpec(services=("H1", "D1"), schedule=SCHEDULE,
                         duration_s=60.0, content_duration_s=40.0,
                         engine="tick")
        outcome = run_fleet(spec)
        with pytest.warns(DeprecationWarning, match="FleetSpec"):
            legacy = run_shared_link(
                ["H1", "D1"], SCHEDULE, duration_s=60.0,
                content_duration_s=40.0,
            )
        assert [r.record for r in legacy] == list(outcome.clients)
        # Live handles kept, like the old helper returned.
        assert legacy[0].analyzer.downloads


class TestJainIndex:
    def test_equal_shares_are_fair(self):
        assert jain_index([2.0, 2.0, 2.0]) == pytest.approx(1.0)

    def test_single_hog_is_unfair(self):
        assert jain_index([4.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_degenerate_populations_fair(self):
        assert jain_index([]) == 1.0
        assert jain_index([0.0, 0.0]) == 1.0


class TestSpecValidation:
    def test_weights_require_clients(self):
        with pytest.raises(ValueError):
            FleetSpec(services=("H1",), service_weights=(1.0,))

    def test_weight_length_must_match(self):
        with pytest.raises(ValueError):
            FleetSpec(services=("H1", "D1"), clients=4,
                      service_weights=(1.0,))

    def test_churn_rates_positive(self):
        with pytest.raises(ValueError):
            FleetSpec(services=("H1",), arrival_rate_per_s=0.0)
        with pytest.raises(ValueError):
            FleetSpec(services=("H1",), mean_dwell_s=-1.0)
