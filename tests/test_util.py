"""Unit tests for repro.util (rng, units, validation)."""

import math

import pytest

from repro.util import (
    DeterministicRng,
    bits_to_bytes,
    bytes_to_bits,
    check_non_negative,
    check_positive,
    check_probability,
    derive_seed,
    kbps,
    mbps,
    to_kbps,
    to_mbps,
)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "x") == derive_seed(42, "x")

    def test_label_sensitive(self):
        assert derive_seed(42, "x") != derive_seed(42, "y")

    def test_parent_sensitive(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_returns_64bit_int(self):
        seed = derive_seed(7, "label")
        assert 0 <= seed < 2**64


class TestDeterministicRng:
    def test_same_seed_same_stream(self):
        a = DeterministicRng(5)
        b = DeterministicRng(5)
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_children_independent_of_sibling_consumption(self):
        parent = DeterministicRng(9)
        child_a_first = parent.child("a").random()
        # Consuming from another child must not perturb "a".
        parent2 = DeterministicRng(9)
        parent2.child("b").random()
        assert parent2.child("a").random() == child_a_first

    def test_truncated_gauss_respects_bounds(self):
        rng = DeterministicRng(3)
        for _ in range(200):
            value = rng.truncated_gauss(1.0, 0.5, 0.5, 1.5)
            assert 0.5 <= value <= 1.5

    def test_truncated_gauss_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            DeterministicRng(1).truncated_gauss(0, 1, 2.0, 1.0)

    def test_ar1_series_length_and_bounds(self):
        series = DeterministicRng(4).ar1_series(500, mean=1.0, sigma=0.3,
                                                rho=0.9, low=0.0, high=2.0)
        assert len(series) == 500
        assert all(0.0 <= value <= 2.0 for value in series)

    def test_ar1_series_mean_near_target(self):
        series = DeterministicRng(4).ar1_series(5000, mean=2.0, sigma=0.2, rho=0.5)
        assert abs(sum(series) / len(series) - 2.0) < 0.1

    def test_ar1_autocorrelation_positive(self):
        series = DeterministicRng(8).ar1_series(2000, mean=0.0, sigma=1.0,
                                                rho=0.9, low=-10, high=10)
        mean = sum(series) / len(series)
        num = sum((a - mean) * (b - mean) for a, b in zip(series, series[1:]))
        den = sum((a - mean) ** 2 for a in series)
        assert num / den > 0.7

    def test_ar1_rejects_bad_rho(self):
        with pytest.raises(ValueError):
            DeterministicRng(1).ar1_series(10, 0, 1, rho=1.0)

    def test_exponential_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            DeterministicRng(1).exponential(0)

    def test_lognormal_positive(self):
        rng = DeterministicRng(2)
        assert all(rng.lognormal(0, 0.5) > 0 for _ in range(100))


class TestUnits:
    def test_kbps(self):
        assert kbps(500) == 500_000

    def test_mbps(self):
        assert mbps(2) == 2_000_000

    def test_roundtrip(self):
        assert to_kbps(kbps(123.4)) == pytest.approx(123.4)
        assert to_mbps(mbps(9.9)) == pytest.approx(9.9)

    def test_bits_bytes(self):
        assert bytes_to_bits(10) == 80
        assert bits_to_bytes(80) == 10
        assert bits_to_bytes(bytes_to_bits(7.5)) == pytest.approx(7.5)


class TestValidation:
    def test_check_positive_accepts(self):
        assert check_positive("x", 0.1) == 0.1

    def test_check_positive_rejects_zero(self):
        with pytest.raises(ValueError, match="x must be positive"):
            check_positive("x", 0)

    def test_check_non_negative_accepts_zero(self):
        assert check_non_negative("x", 0) == 0

    def test_check_non_negative_rejects(self):
        with pytest.raises(ValueError):
            check_non_negative("x", -1e-9)

    def test_check_probability(self):
        assert check_probability("p", 0.5) == 0.5
        with pytest.raises(ValueError):
            check_probability("p", 1.01)
        assert not math.isnan(check_probability("p", 0.0))
