"""ABR algorithm unit tests (section 3.3.3/3.3.4, section 4.2)."""

import pytest

from repro.manifest.types import ClientSegmentInfo, ClientTrackInfo
from repro.media.track import StreamType
from repro.player.abr import (
    AbrContext,
    ExoPlayerAbr,
    RateBasedAbr,
    UnstableAbr,
    track_rate_bps,
)
from repro.util import kbps


def make_tracks(declared_kbps, *, actual_ratio=None, segment_count=10,
                duration=4.0, average_bandwidth_ratio=None):
    """Tracks with optional per-segment sizes (actual = ratio * declared)."""
    tracks = []
    for level, declared in enumerate(declared_kbps):
        segments = None
        if actual_ratio is not None:
            segments = [
                ClientSegmentInfo(
                    index=i, start_s=i * duration, duration_s=duration,
                    url=f"u{level}",
                    size_bytes=int(
                        kbps(declared) * actual_ratio * duration / 8
                    ),
                )
                for i in range(segment_count)
            ]
        tracks.append(ClientTrackInfo(
            track_key=f"t{level}", stream_type=StreamType.VIDEO, level=level,
            declared_bitrate_bps=kbps(declared),
            average_bandwidth_bps=(
                kbps(declared) * average_bandwidth_ratio
                if average_bandwidth_ratio else None
            ),
            segments=segments,
        ))
    return tracks


def ctx(tracks, estimate_kbps, *, buffer_s=20.0, last_level=None,
        next_index=0):
    return AbrContext(
        now=0.0, tracks=tracks, buffer_s=buffer_s,
        estimate_bps=kbps(estimate_kbps) if estimate_kbps is not None else None,
        last_level=last_level, next_index=next_index,
    )


LADDER = (250, 500, 1000, 2000, 4000)


class TestTrackRate:
    def test_declared_when_no_sizes(self):
        track = make_tracks([1000])[0]
        assert track_rate_bps(track, 0, use_actual=True) == kbps(1000)

    def test_actual_from_segments(self):
        track = make_tracks([1000], actual_ratio=0.5)[0]
        assert track_rate_bps(track, 0, use_actual=True) == \
            pytest.approx(kbps(500), rel=0.01)

    def test_average_bandwidth_fallback(self):
        track = make_tracks([1000], average_bandwidth_ratio=0.5)[0]
        assert track_rate_bps(track, 0, use_actual=True) == kbps(500)

    def test_ignored_without_use_actual(self):
        track = make_tracks([1000], actual_ratio=0.5)[0]
        assert track_rate_bps(track, 0, use_actual=False) == kbps(1000)


class TestRateBased:
    def test_basic_selection(self):
        abr = RateBasedAbr(0.75)
        tracks = make_tracks(LADDER)
        assert abr.select_level(ctx(tracks, 2000)) == 2  # 0.75*2000=1500 -> 1000

    def test_safety_factor_positions_envelope(self):
        tracks = make_tracks(LADDER)
        conservative = RateBasedAbr(0.5).select_level(ctx(tracks, 2100))
        aggressive = RateBasedAbr(1.0).select_level(ctx(tracks, 2100))
        assert conservative < aggressive

    def test_no_estimate_holds_last(self):
        abr = RateBasedAbr(0.75)
        tracks = make_tracks(LADDER)
        assert abr.select_level(ctx(tracks, None, last_level=3)) == 3
        assert abr.select_level(ctx(tracks, None)) == 0

    def test_up_step_limited(self):
        abr = RateBasedAbr(1.0, max_up_step=1)
        tracks = make_tracks(LADDER)
        assert abr.select_level(ctx(tracks, 4000, last_level=0)) == 1

    def test_down_switch_immediate_without_guard(self):
        abr = RateBasedAbr(0.75)
        tracks = make_tracks(LADDER)
        level = abr.select_level(ctx(tracks, 400, last_level=4, buffer_s=120))
        assert level == 0

    def test_buffer_guard_defers_down_switch(self):
        abr = RateBasedAbr(0.75, decrease_buffer_threshold_s=40.0)
        tracks = make_tracks(LADDER)
        held = abr.select_level(ctx(tracks, 400, last_level=4, buffer_s=120))
        assert held == 4
        dropped = abr.select_level(ctx(tracks, 400, last_level=4, buffer_s=30))
        assert dropped == 0

    def test_use_actual_selects_higher_for_vbr(self):
        tracks = make_tracks(LADDER, actual_ratio=0.5)
        declared_only = RateBasedAbr(0.75, use_actual=False)
        actual_aware = RateBasedAbr(0.75, use_actual=True, max_up_step=None)
        assert actual_aware.select_level(ctx(tracks, 2000)) > \
            declared_only.select_level(ctx(tracks, 2000))

    def test_rejects_bad_safety(self):
        with pytest.raises(ValueError):
            RateBasedAbr(0.0)


class TestUnstable:
    def test_greedy_over_varying_segment_sizes(self):
        """Alternating segment sizes around the budget flip the choice."""
        tracks = make_tracks((500, 1000), actual_ratio=0.5)
        # Make track 1's segments alternate between cheap and expensive.
        for i, segment in enumerate(tracks[1].segments):
            segment.size_bytes = int(
                kbps(1000) * (0.3 if i % 2 == 0 else 0.9) * 4 / 8
            )
        abr = UnstableAbr(safety_factor=1.0)
        level_even = abr.select_level(ctx(tracks, 500, next_index=0))
        level_odd = abr.select_level(ctx(tracks, 500, next_index=1))
        assert level_even == 1
        assert level_odd == 0

    def test_no_estimate(self):
        abr = UnstableAbr()
        tracks = make_tracks(LADDER)
        assert abr.select_level(ctx(tracks, None, last_level=2)) == 2


class TestExoPlayerAbr:
    def test_ideal_selection(self):
        abr = ExoPlayerAbr(bandwidth_fraction=0.75)
        tracks = make_tracks(LADDER)
        assert abr.select_level(ctx(tracks, 2000, last_level=2)) == 2

    def test_up_switch_suppressed_on_short_buffer(self):
        abr = ExoPlayerAbr(min_duration_for_quality_increase_s=10.0)
        tracks = make_tracks(LADDER)
        assert abr.select_level(
            ctx(tracks, 6000, last_level=1, buffer_s=5.0)
        ) == 1
        assert abr.select_level(
            ctx(tracks, 6000, last_level=1, buffer_s=15.0)
        ) == 4

    def test_down_switch_suppressed_on_long_buffer(self):
        abr = ExoPlayerAbr(max_duration_for_quality_decrease_s=25.0)
        tracks = make_tracks(LADDER)
        assert abr.select_level(
            ctx(tracks, 300, last_level=3, buffer_s=30.0)
        ) == 3
        assert abr.select_level(
            ctx(tracks, 300, last_level=3, buffer_s=20.0)
        ) == 0

    def test_use_actual_flag(self):
        tracks = make_tracks(LADDER, actual_ratio=0.5)
        declared = ExoPlayerAbr(use_actual=False)
        actual = ExoPlayerAbr(use_actual=True)
        c = ctx(tracks, 2000, last_level=2, buffer_s=15.0)
        assert actual.select_level(c) > declared.select_level(c)
