"""Tests for shared-link multi-client sessions, timeline extraction and
DASH SegmentTemplate addressing."""

import dataclasses

import pytest

from repro.analysis.timelines import extract_timelines
from repro.core.fleet import FleetSpec, run_fleet
from repro.core.multi import MultiSession
from repro.core.session import Session
from tests.support import run_session
from repro.manifest.dash import DashBuilder, SegmentAddressing, parse_mpd
from repro.manifest.types import Protocol
from repro.media.track import StreamType
from repro.net.schedule import ConstantSchedule
from repro.server import OriginServer
from repro.services import build_service, get_service
from repro.util import kbps, mbps


def template_spec(base="D4", name="D4T"):
    return dataclasses.replace(
        get_service(base), name=name,
        dash_addressing=SegmentAddressing.TEMPLATE,
    )


class TestSegmentTemplate:
    @pytest.fixture(scope="class")
    def mpd_round_trip(self, small_asset):
        builder = DashBuilder(base_url="https://cdn.test", asset=small_asset,
                              addressing=SegmentAddressing.TEMPLATE)
        return builder, parse_mpd(builder.mpd(), builder.mpd_url)

    def test_segments_expanded_without_sizes(self, mpd_round_trip,
                                             small_asset):
        builder, manifest = mpd_round_trip
        assert manifest.protocol is Protocol.DASH
        for info, track in zip(manifest.video_tracks,
                               small_asset.video_tracks):
            assert info.segments is not None
            assert len(info.segments) == track.segment_count
            assert all(seg.size_bytes is None for seg in info.segments)
            assert all(seg.byte_range is None for seg in info.segments)

    def test_urls_match_server_namespace(self, mpd_round_trip, small_asset):
        builder, manifest = mpd_round_trip
        track = small_asset.video_tracks[0]
        info = manifest.video_tracks[0]
        for seg in info.segments[:5]:
            assert seg.url == builder.template_segment_url(track, seg.index)

    def test_durations_match(self, mpd_round_trip, small_asset):
        _, manifest = mpd_round_trip
        total = sum(seg.duration_s for seg in manifest.video_tracks[0].segments)
        assert total == pytest.approx(small_asset.duration_s, abs=0.05)

    def test_end_to_end_session(self):
        result = run_session(template_spec(), ConstantSchedule(mbps(3)),
                             duration_s=90.0, content_duration_s=90.0)
        assert result.playback_started
        assert result.true_stall_count == 0
        video = result.analyzer.media_downloads(StreamType.VIDEO)
        audio = result.analyzer.media_downloads(StreamType.AUDIO)
        assert video and audio
        # per-segment URLs: sizes learned at download time
        assert all(d.size_bytes > 0 for d in video)

    def test_use_actual_degrades_gracefully(self):
        """Template addressing exposes no sizes, so an actual-bitrate
        ABR must fall back to declared bitrates without crashing."""
        spec = dataclasses.replace(template_spec(), abr_use_actual=True)
        result = run_session(spec, ConstantSchedule(mbps(3)),
                             duration_s=60.0, content_duration_s=60.0)
        assert result.playback_started


def _run_fleet_clients(names, schedule, *, duration_s):
    spec = FleetSpec(services=tuple(names), schedule=schedule,
                     duration_s=duration_s, engine="tick")
    return list(run_fleet(spec, keep_results=True).results)


class TestMultiSession:
    def test_identical_clients_share_fairly(self):
        results = _run_fleet_clients(["H6", "H6"], ConstantSchedule(mbps(6)),
                                  duration_s=240.0)
        assert len(results) == 2
        a, b = results
        assert a.qoe.average_displayed_bitrate_bps > 0
        ratio = (a.qoe.average_displayed_bitrate_bps
                 / b.qoe.average_displayed_bitrate_bps)
        assert 0.7 < ratio < 1.4
        assert a.qoe.total_stall_s == 0.0
        assert b.qoe.total_stall_s == 0.0

    def test_flow_attribution_is_disjoint_and_complete(self):
        results = _run_fleet_clients(["H6", "D2"], ConstantSchedule(mbps(6)),
                                  duration_s=120.0)
        urls_a = {d.url for d in results[0].analyzer.downloads}
        urls_b = {d.url for d in results[1].analyzer.downloads}
        assert urls_a and urls_b
        assert not urls_a & urls_b

    def test_aggressive_beats_conservative_on_shared_link(self):
        # D3 (aggressive, actual-aware) vs D2 (most conservative) —
        # the unfairness FESTIVE-style work addresses.
        results = _run_fleet_clients(["D3", "D2"], ConstantSchedule(mbps(4)),
                                  duration_s=240.0)
        d3, d2 = results
        assert d3.qoe.average_displayed_bitrate_bps > \
            d2.qoe.average_displayed_bitrate_bps

    def test_requires_clients(self):
        with pytest.raises(ValueError):
            MultiSession([], OriginServer(), ConstantSchedule(mbps(1)))

    def test_same_service_twice_distinct_namespaces(self):
        results = _run_fleet_clients(["H1", "H1"], ConstantSchedule(mbps(5)),
                                  duration_s=90.0)
        assert results[0].client_id != results[1].client_id
        assert results[0].analyzer.downloads
        assert results[1].analyzer.downloads


class TestTimelines:
    @pytest.fixture(scope="class")
    def session(self):
        return run_session("D1", ConstantSchedule(mbps(2)), duration_s=120.0,
                           content_duration_s=240.0)

    def test_series_lengths(self, session):
        timelines = extract_timelines(session.analyzer, session.ui, 120.0)
        assert len(timelines.times) == 121
        assert len(timelines.play_position_s) == 121
        assert len(timelines.video_buffer_s) == 121
        assert timelines.audio_buffer_s is not None  # D1 has separate audio

    def test_monotone_series(self, session):
        timelines = extract_timelines(session.analyzer, session.ui, 120.0)
        assert list(timelines.play_position_s) == \
            sorted(timelines.play_position_s)
        assert list(timelines.video_downloaded_s) == \
            sorted(timelines.video_downloaded_s)

    def test_buffer_is_download_minus_play(self, session):
        timelines = extract_timelines(session.analyzer, session.ui, 120.0)
        for i in range(len(timelines.times)):
            expected = max(
                timelines.video_downloaded_s[i]
                - timelines.play_position_s[i], 0.0,
            )
            assert timelines.video_buffer_s[i] == pytest.approx(expected)

    def test_selected_level_series(self, session):
        timelines = extract_timelines(session.analyzer, session.ui, 120.0)
        assert timelines.selected_level[0] is None  # nothing fetched at t=0
        assert any(level is not None for level in timelines.selected_level)

    def test_csv_export(self, session):
        timelines = extract_timelines(session.analyzer, session.ui, 60.0)
        csv_text = timelines.to_csv()
        lines = csv_text.strip().splitlines()
        assert lines[0].startswith("t,play_position_s,video_buffer_s")
        assert "audio_buffer_s" in lines[0]
        assert len(lines) == 62  # header + 61 samples

    def test_no_audio_columns_for_hls(self, h1_session):
        timelines = extract_timelines(h1_session.analyzer, h1_session.ui,
                                      60.0)
        assert timelines.audio_buffer_s is None
        assert "audio" not in timelines.to_csv().splitlines()[0]
