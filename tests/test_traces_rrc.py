"""Cellular trace generation (Figure 3 input) and the RRC energy model."""

import pytest

from repro.net.rrc import RrcConfig, RrcMachine, RrcState
from repro.net.traces import (
    PROFILE_COUNT,
    CellularTrace,
    Scenario,
    cellular_profiles,
    generate_trace,
    split_trace,
)
from repro.util import mbps


class TestTraces:
    @pytest.fixture(scope="class")
    def profiles(self):
        return cellular_profiles(600)

    def test_fourteen_profiles(self, profiles):
        assert len(profiles) == PROFILE_COUNT

    def test_sorted_by_average(self, profiles):
        averages = [trace.average_bps for trace in profiles]
        assert averages == sorted(averages)

    def test_average_ladder_range(self, profiles):
        # Figure 3: averages span well under 1 Mbps up to ~40 Mbps.
        assert profiles[0].average_bps < mbps(0.5)
        assert profiles[-1].average_bps > mbps(30)

    def test_duration_and_granularity(self, profiles):
        for trace in profiles:
            assert trace.duration_s == 600
            assert len(trace.samples_bps) == 600

    def test_samples_positive(self, profiles):
        for trace in profiles:
            assert trace.min_bps > 0

    def test_deterministic(self):
        assert generate_trace(3, 120).samples_bps == \
            generate_trace(3, 120).samples_bps

    def test_profiles_differ(self):
        assert generate_trace(3, 120).samples_bps != \
            generate_trace(4, 120).samples_bps

    def test_scenarios_assigned(self, profiles):
        assert profiles[0].scenario is Scenario.DRIVING
        assert profiles[6].scenario is Scenario.WALKING
        assert profiles[-1].scenario is Scenario.STATIONARY

    def test_driving_more_variable_than_stationary(self):
        driving = generate_trace(2, 600)
        stationary = generate_trace(13, 600)

        def coefficient_of_variation(trace: CellularTrace) -> float:
            mean = trace.average_bps
            var = sum((s - mean) ** 2 for s in trace.samples_bps) / len(
                trace.samples_bps
            )
            return var ** 0.5 / mean

        assert coefficient_of_variation(driving) > \
            coefficient_of_variation(stationary)

    def test_invalid_profile_id(self):
        with pytest.raises(ValueError):
            generate_trace(0)
        with pytest.raises(ValueError):
            generate_trace(15)

    def test_split_trace(self):
        trace = generate_trace(1, 600)
        chunks = split_trace(trace, 60)
        assert len(chunks) == 10
        assert all(chunk.duration_s == 60 for chunk in chunks)
        reassembled = tuple(
            sample for chunk in chunks for sample in chunk.samples_bps
        )
        assert reassembled == trace.samples_bps

    def test_as_schedule(self):
        trace = generate_trace(5, 60)
        schedule = trace.as_schedule()
        assert schedule.bandwidth_at(30.5) == trace.samples_bps[30]


class TestRrc:
    def test_promotion_and_energy(self):
        machine = RrcMachine()
        machine.observe(True, 1.0)
        assert machine.state is RrcState.CONNECTED_ACTIVE
        assert machine.promotions == 1
        expected = machine.config.promotion_energy_j + machine.config.active_power_w
        assert machine.energy_j == pytest.approx(expected)

    def test_tail_then_idle(self):
        config = RrcConfig(demotion_timer_s=2.0)
        machine = RrcMachine(config=config)
        machine.observe(True, 1.0)
        machine.observe(False, 1.0)
        assert machine.state is RrcState.CONNECTED_TAIL
        machine.observe(False, 1.0)
        assert machine.state is RrcState.IDLE
        assert machine.demotions == 1

    def test_activity_resets_tail(self):
        config = RrcConfig(demotion_timer_s=2.0)
        machine = RrcMachine(config=config)
        machine.observe(True, 1.0)
        machine.observe(False, 1.5)
        machine.observe(True, 1.0)   # back to active before demotion
        machine.observe(False, 1.5)
        assert machine.state is RrcState.CONNECTED_TAIL
        assert machine.demotions == 0

    def test_short_gap_never_reaches_idle(self):
        """A pause shorter than the demotion timer burns tail energy the
        whole time — the section 3.3.2 energy point."""
        config = RrcConfig(demotion_timer_s=11.0)
        machine = RrcMachine(config=config)
        for _ in range(10):
            machine.observe(True, 1.0)
            for _ in range(8):  # 8 s gaps < 11 s timer
                machine.observe(False, 1.0)
        assert machine.time_in_state[RrcState.IDLE] == 0.0
        assert machine.promotions == 1

    def test_long_gap_reaches_idle_and_saves_energy(self):
        config = RrcConfig(demotion_timer_s=11.0)
        short_gap = RrcMachine(config=config)
        long_gap = RrcMachine(config=config)
        # Same active time, same total duration; different gap structure.
        for _ in range(4):
            short_gap.observe(True, 2.0)
            for _ in range(10):
                short_gap.observe(False, 1.0)
        long_gap.observe(True, 8.0)
        for _ in range(40):
            long_gap.observe(False, 1.0)
        assert long_gap.time_in_state[RrcState.IDLE] > 0
        assert long_gap.energy_j < short_gap.energy_j

    def test_idle_fraction(self):
        machine = RrcMachine(config=RrcConfig(demotion_timer_s=1.0))
        machine.observe(True, 1.0)
        for _ in range(3):
            machine.observe(False, 1.0)
        assert 0.0 < machine.idle_fraction < 1.0
