"""The unified run API.

One construction path (``RunSpec.build``), one execution surface
(``run_one`` / ``execute``), typed errors for replay-path field access,
and the ``player_config`` + ``workers>0`` footgun fixed by diffing a
derived config into picklable ``config_overrides``.  The historical
``run_session`` / ``run_service_over_profiles`` shims are retired; the
tests below pin that they stay gone.
"""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

from repro.cli import main
from repro.core.experiment import (
    ProfileRun,
    profile_sweep_specs,
)
from repro.core.parallel import (
    RunSpec,
    SweepRunner,
    execute_run_spec,
    record_from_result,
)
from repro.core.run import RunOutcome, execute, run_one
from repro.core.session import ResultFieldMissing, SessionResult
from tests.support import run_session
from repro.net.schedule import ConstantSchedule
from repro.net.traces import generate_trace
from repro.player.config import (
    PlayerConfig,
    UnpicklableConfigOverride,
    config_overrides_between,
)
from repro.player.player import PlayerState
from repro.services import get_service
from repro.util import mbps

DURATION_S = 40.0


def _spec(**kwargs):
    defaults = dict(service="H1", profile_id=9, duration_s=DURATION_S)
    defaults.update(kwargs)
    return RunSpec(**defaults)


# ---------------------------------------------------------------------------
# RunSpec.build + run_one
# ---------------------------------------------------------------------------


def test_build_materialises_a_runnable_session():
    session = _spec().build()
    result = session.run(DURATION_S)
    assert result.player_state in (PlayerState.ENDED, PlayerState.PLAYING)
    assert result.qoe is not None


def test_run_one_returns_full_outcome():
    outcome = run_one(_spec())
    assert isinstance(outcome, RunOutcome)
    assert outcome.record.service_name == "H1"
    assert outcome.result is not None  # keep_result defaults to True
    assert outcome.trace == ()  # tracing off by default
    assert outcome.metrics.value("session.runs") == 1
    assert outcome.tick_stats.ticks_executed > 0


def test_run_one_profile_collects_phase_stats():
    outcome = run_one(_spec(), profile=True, keep_result=False)
    phases = {stat.phase for stat in outcome.profile}
    assert {"network", "player", "rrc"} <= phases
    assert all(stat.wall_s >= 0.0 for stat in outcome.profile)


def test_schedule_beats_profile_id():
    spec = _spec(schedule=ConstantSchedule(mbps(4.0)))
    assert spec.resolved_schedule() == ConstantSchedule(mbps(4.0))


# ---------------------------------------------------------------------------
# execute
# ---------------------------------------------------------------------------


def test_execute_matches_legacy_sweep_runner():
    specs = [_spec(), _spec(service="S1")]
    outcomes = execute(specs, workers=0)
    legacy = SweepRunner(workers=0).run(specs)
    assert [outcome.record for outcome in outcomes] == legacy
    assert [outcome.record for outcome in outcomes] == [
        execute_run_spec(spec) for spec in specs
    ]


def test_execute_validates_arguments():
    with pytest.raises(ValueError):
        execute([_spec()], workers=-1)
    with pytest.raises(ValueError, match="keep_results"):
        execute([_spec()], workers=2, keep_results=True)


def test_execute_keep_results_serial_only():
    outcomes = execute([_spec()], workers=0, keep_results=True)
    assert outcomes[0].result is not None
    outcomes = execute([_spec()], workers=0)
    assert outcomes[0].result is None


# ---------------------------------------------------------------------------
# Retired shims
# ---------------------------------------------------------------------------


def test_shims_are_gone():
    """The deprecated entry points were removed, not just discouraged."""
    import repro
    import repro.core
    import repro.core.experiment
    import repro.core.session

    for module in (repro, repro.core, repro.core.session):
        assert not hasattr(module, "run_session")
    for module in (repro, repro.core, repro.core.experiment):
        assert not hasattr(module, "run_service_over_profiles")


def test_support_run_session_matches_run_one():
    trace = generate_trace(9, int(DURATION_S))
    helper = run_session("H1", trace, duration_s=DURATION_S)
    modern = run_one(_spec(trace=trace)).result
    assert helper.qoe == modern.qoe
    assert helper.events.events == modern.events.events


def test_profile_sweep_specs_plus_execute_keeps_live_results():
    profiles = [generate_trace(2, int(DURATION_S))]
    specs = profile_sweep_specs("S2", profiles, duration_s=DURATION_S)
    runs = [
        ProfileRun.from_outcome(outcome)
        for outcome in execute(specs, workers=0, keep_results=True)
    ]
    assert [run.profile_id for run in runs] == [2]
    assert all(run.result is not None for run in runs)


# ---------------------------------------------------------------------------
# The player_config + workers footgun
# ---------------------------------------------------------------------------


def test_derived_player_config_works_with_workers():
    """A replace()-derived config rides workers>0 as picklable overrides."""
    base = get_service("H1").player_config()
    tweaked = replace(base, startup_buffer_s=4.0, retry_interval_s=1.0)
    overrides = config_overrides_between(base, tweaked)
    profiles = [generate_trace(1, 30)]
    specs = profile_sweep_specs(
        "H1", profiles, duration_s=30.0, config_overrides=overrides
    )
    parallel = execute(specs, workers=2)
    serial = execute(specs, workers=0)
    assert [o.record for o in parallel] == [o.record for o in serial]


def test_config_overrides_between_diffs_plain_fields():
    base = get_service("H1").player_config()
    tweaked = replace(base, startup_buffer_s=4.0)
    overrides = config_overrides_between(base, tweaked)
    assert overrides == (("startup_buffer_s", 4.0),)
    assert config_overrides_between(base, base) == ()
    with pytest.raises(UnpicklableConfigOverride):
        config_overrides_between(base, PlayerConfig(name="x"))
    assert issubclass(UnpicklableConfigOverride, ValueError)


def test_spec_config_overrides_reach_the_player():
    spec = _spec(config_overrides=(("startup_buffer_s", 4.0),))
    session = spec.build()
    assert session.player.config.startup_buffer_s == 4.0


# ---------------------------------------------------------------------------
# ResultFieldMissing
# ---------------------------------------------------------------------------


def test_replay_result_raises_typed_error():
    bare = SessionResult(
        service_name="H1",
        duration_s=10.0,
        player_state=PlayerState.ENDED,
        replay_path="a deserialized sweep record",
    )
    with pytest.raises(ResultFieldMissing, match="events") as excinfo:
        _ = bare.true_stall_s
    message = str(excinfo.value)
    assert "a deserialized sweep record" in message
    assert "workers=0" in message  # tells the caller how to get it back
    with pytest.raises(ResultFieldMissing, match="analyzer, ui"):
        _ = bare.buffer_estimator


def test_record_from_result_names_missing_fields():
    bare = SessionResult(
        service_name="H1", duration_s=10.0, player_state=PlayerState.ENDED
    )
    with pytest.raises(ResultFieldMissing, match="events, qoe, rrc, player"):
        record_from_result(_spec(), bare)


def test_profile_run_without_payload_raises():
    run = ProfileRun(service_name="H1", profile_id=1, repetition=0)
    with pytest.raises(ResultFieldMissing):
        _ = run.qoe


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def test_cli_trace_renders_timeline(capsys, tmp_path):
    jsonl = tmp_path / "trace.jsonl"
    code = main([
        "trace", "H1", "--bandwidth", "4", "--duration", "30",
        "--jsonl", str(jsonl),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "download" in out and "abr" in out
    lines = jsonl.read_text().strip().splitlines()
    assert lines and json.loads(lines[0])["kind"]


def test_cli_compare_writes_metrics_json(capsys, tmp_path):
    path = tmp_path / "metrics.json"
    code = main([
        "compare", "H1", "--profiles", "2", "--duration", "30",
        "--fast-forward", "--metrics-json", str(path),
    ])
    assert code == 0
    payload = json.loads(path.read_text())
    counters = {row["name"]: row for row in payload["counters"]}
    assert counters["session.runs"]["value"] == 1
    assert capsys.readouterr().out  # comparison table printed


def test_cli_resilience_writes_metrics_json(capsys, tmp_path):
    path = tmp_path / "metrics.json"
    code = main([
        "resilience", "H1", "--scenarios", "baseline", "--duration", "30",
        "--metrics-json", str(path),
    ])
    assert code == 0
    payload = json.loads(path.read_text())
    assert any(row["name"] == "session.runs" for row in payload["counters"])
