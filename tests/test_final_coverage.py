"""Final coverage batch: retry paths, startup level choice, CLI probe."""

import pytest

from repro.cli import main as cli_main
from repro.core.session import Session
from tests.support import run_session
from repro.net.http import HttpRequest, HttpStatus, ResponsePlan
from repro.net.schedule import ConstantSchedule, StepSchedule
from repro.player.player import PlayerState
from repro.server import OriginServer
from repro.services import build_service, get_service
from repro.util import kbps, mbps


class _FailFirstManifest:
    """Origin wrapper that 404s the first N manifest requests."""

    def __init__(self, origin, failures: int):
        self.origin = origin
        self.failures_left = failures
        self.manifest_requests = 0

    def handle(self, request: HttpRequest) -> ResponsePlan:
        plan = self.origin.handle(request)
        if plan.text is not None:
            self.manifest_requests += 1
            if self.failures_left > 0:
                self.failures_left -= 1
                return ResponsePlan.error(HttpStatus.NOT_FOUND)
        return plan


class TestManifestRetry:
    def test_player_retries_failed_manifest(self):
        server = OriginServer()
        built = build_service("H6", server, duration_s=60.0)
        wrapper = _FailFirstManifest(server, failures=2)
        session = Session(built, server, ConstantSchedule(mbps(4)))
        session.proxy.origin = wrapper
        result = session.run(30.0)
        assert wrapper.manifest_requests >= 3  # two failures + a success
        assert result.playback_started

    def test_playlist_failures_recovered(self):
        server = OriginServer()
        built = build_service("H6", server, duration_s=60.0)

        class FailSecondText:
            def __init__(self, origin):
                self.origin = origin
                self.text_count = 0

            def handle(self, request):
                plan = self.origin.handle(request)
                if plan.text is not None:
                    self.text_count += 1
                    if self.text_count == 2:  # the first media playlist
                        return ResponsePlan.error(HttpStatus.NOT_FOUND)
                return plan

        session = Session(built, server, ConstantSchedule(mbps(4)))
        session.proxy.origin = FailSecondText(server)
        result = session.run(30.0)
        assert result.playback_started


class TestStartupLevelChoice:
    @pytest.mark.parametrize("target_kbps,expected_declared", [
        (330, 330), (640, 630), (3000, 3500), (10, 330), (99999, 5500),
    ])
    def test_closest_track_chosen(self, target_kbps, expected_declared):
        import dataclasses
        spec = dataclasses.replace(get_service("H1"),
                                   startup_bitrate_kbps=float(target_kbps))
        result = run_session(spec, ConstantSchedule(mbps(6)),
                             duration_s=20.0, content_duration_s=60.0)
        first = result.analyzer.media_downloads()[0]
        assert first.declared_bitrate_bps == pytest.approx(
            kbps(expected_declared))


class TestSeekWhileRebuffering:
    def test_seek_out_of_stall(self):
        # Stall the player, then seek; the stall must close cleanly.
        schedule = StepSchedule.single_step(mbps(3), kbps(30), 10.0)
        server = OriginServer()
        built = build_service("H2", server, duration_s=300.0)
        session = Session(built, server, schedule)
        player = session.player
        for _ in range(1200):
            session.network.advance(session.clock.dt)
            player.advance(session.clock.dt)
            session.clock.tick()
            if player.state is PlayerState.REBUFFERING:
                break
        assert player.state is PlayerState.REBUFFERING
        player.seek(0.0)
        assert player.state is PlayerState.BUFFERING
        # ground-truth stall bookkeeping is closed
        from repro.player.events import StallEnded, StallStarted
        starts = player.events.of_type(StallStarted)
        ends = player.events.of_type(StallEnded)
        assert len(starts) == len(ends)


class TestCliProbe:
    def test_probe_command(self, capsys):
        assert cli_main(["probe", "H6"]) == 0
        out = capsys.readouterr().out
        assert "startup buffer" in out
        assert "download ctrl" in out
        assert "adaptation" in out

    def test_run_with_profile(self, capsys):
        assert cli_main(["run", "H6", "--profile", "9",
                         "--duration", "60"]) == 0
        out = capsys.readouterr().out
        assert "profile 9" in out

    def test_run_rejects_bad_profile(self):
        with pytest.raises(SystemExit):
            cli_main(["run", "H6", "--profile", "99", "--duration", "30"])


class TestEventLogQueries:
    def test_event_log_aggregations(self, s2_session):
        log = s2_session.events
        assert log.stall_count() == len(
            log.of_type(__import__("repro.player.events",
                                   fromlist=["StallStarted"]).StallStarted))
        assert log.discarded_bytes() >= 0

    def test_session_duration_consistency(self, h1_session):
        # the session result's duration covers all UI samples
        last_sample = h1_session.player.ui_samples[-1]
        assert last_sample.at <= h1_session.duration_s + 1.0
