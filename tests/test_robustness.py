"""Edge cases and failure paths across the stack."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.proxy import FlowRecord, Proxy, SegmentLimitRejector
from repro.analysis.traffic import TrafficAnalyzer
from repro.analysis.ui import UiMonitor
from repro.core.session import Session
from tests.support import run_session
from repro.media.track import StreamType
from repro.net.http import HttpRequest, HttpStatus
from repro.net.schedule import ConstantSchedule, StepSchedule
from repro.player.events import ProgressSample
from repro.player.player import PlayerState
from repro.server import OriginServer
from repro.services import build_service, get_service
from repro.util import kbps, mbps


class TestZeroAndTinyBandwidth:
    def test_tiny_bandwidth_never_starts(self):
        result = run_session("H1", ConstantSchedule(kbps(5)),
                             duration_s=60.0, content_duration_s=120.0)
        assert not result.playback_started
        assert result.player_state in (PlayerState.INIT,
                                       PlayerState.BUFFERING)

    def test_bandwidth_appears_later(self):
        schedule = StepSchedule(steps=((0.0, kbps(5)), (30.0, mbps(4))))
        result = run_session("H1", schedule, duration_s=120.0,
                             content_duration_s=120.0)
        assert result.playback_started
        assert result.true_startup_delay_s > 30.0


class TestProxyRejection:
    def test_rejector_blocks_only_past_limit(self, h1_session):
        # Build a rejector over the already-analyzed session and check
        # classification against known downloads.
        analyzer = h1_session.analyzer
        rejector = SegmentLimitRejector(analyzer, max_video_segments=3)
        downloads = analyzer.media_downloads(StreamType.VIDEO)
        below = next(d for d in downloads if d.index < 3)
        above = next(d for d in downloads if d.index >= 3)
        assert not rejector.should_reject(
            HttpRequest(url=below.url)
        )
        assert rejector.should_reject(
            HttpRequest(url=above.url)
        )

    def test_manifests_always_pass(self, h1_session):
        rejector = SegmentLimitRejector(h1_session.analyzer,
                                        max_video_segments=0)
        manifest_flow = next(f for f in h1_session.proxy.flows if f.text)
        assert not rejector.should_reject(HttpRequest(url=manifest_flow.url))

    def test_rejector_validation(self, h1_session):
        with pytest.raises(ValueError):
            SegmentLimitRejector(h1_session.analyzer, max_video_segments=-1)


class TestProxyRewriting:
    def test_rewriter_applies_to_text_only(self, small_asset):
        server = OriginServer()
        hosting = server.host_hls(small_asset, "https://cdn.test")
        proxy = Proxy(server)
        proxy.manifest_rewriter = lambda text, url: text.upper()
        plan = proxy.handle(HttpRequest(url=hosting.manifest_url))
        assert plan.text.startswith("#EXTM3U")  # already upper-ish
        track = small_asset.video_tracks[0]
        media_plan = proxy.handle(
            HttpRequest(url=hosting.builder.segment_url(track, 0))
        )
        assert media_plan.text is None  # untouched

    def test_identity_rewrite_keeps_plan(self, small_asset):
        server = OriginServer()
        hosting = server.host_hls(small_asset, "https://cdn.test")
        proxy = Proxy(server)
        proxy.manifest_rewriter = lambda text, url: text
        plan = proxy.handle(HttpRequest(url=hosting.manifest_url))
        assert plan.is_success


class TestAnalyzerRobustness:
    def test_ignores_failed_flows(self):
        analyzer = TrafficAnalyzer()
        analyzer.observe_flow(FlowRecord(
            url="u", byte_range=None, connection_id="c:1", started_at=0.0,
            status=HttpStatus.NOT_FOUND, planned_bytes=10, completed_at=1.0,
            size_bytes=10,
        ))
        assert not analyzer.downloads

    def test_unattributed_media_counted(self):
        analyzer = TrafficAnalyzer()
        analyzer.observe_flow(FlowRecord(
            url="https://mystery/seg", byte_range=None, connection_id="c:1",
            started_at=0.0, status=HttpStatus.OK, planned_bytes=5000,
            completed_at=1.0, size_bytes=5000,
        ))
        assert analyzer.unattributed_media_bytes == 5000
        assert not analyzer.downloads

    def test_garbage_text_ignored(self):
        analyzer = TrafficAnalyzer()
        analyzer.observe_flow(FlowRecord(
            url="u", byte_range=None, connection_id="c:1", started_at=0.0,
            status=HttpStatus.OK, planned_bytes=3, completed_at=1.0,
            size_bytes=3, text="???",
        ))
        assert analyzer.manifest is None

    def test_non_sidx_data_treated_as_media(self):
        analyzer = TrafficAnalyzer()
        analyzer.observe_flow(FlowRecord(
            url="u", byte_range=(0, 9), connection_id="c:1", started_at=0.0,
            status=HttpStatus.PARTIAL_CONTENT, planned_bytes=10,
            completed_at=1.0, size_bytes=10, data=b"0123456789",
        ))
        assert analyzer.unattributed_media_bytes == 10

    def test_duplicate_manifest_observation_is_idempotent(self, h1_session):
        analyzer = TrafficAnalyzer()
        analyzer.observe_flows(h1_session.proxy.flows)
        count = len(analyzer.downloads)
        manifest_flows = [f for f in h1_session.proxy.flows if f.text]
        for flow in manifest_flows:
            analyzer.observe_flow(flow)
        assert len(analyzer.downloads) == count
        assert len(analyzer.tracks(StreamType.VIDEO)) == 6


class TestUiMonitorProperties:
    @given(
        stall_starts=st.lists(
            st.tuples(st.integers(min_value=10, max_value=200),
                      st.integers(min_value=3, max_value=20)),
            min_size=0, max_size=4,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_reconstructs_synthetic_stalls(self, stall_starts):
        """Build a synthetic playback trace with known stalls; the monitor
        must recover total stall time to within quantisation error."""
        # normalise: sort, drop overlapping stalls
        stalls = []
        cursor = 5
        for start, duration in sorted(stall_starts):
            if start >= cursor:
                stalls.append((start, duration))
                cursor = start + duration + 5
        samples = []
        position = 0.0
        stall_iter = iter(stalls)
        current = next(stall_iter, None)
        remaining = 0
        for t in range(0, 300):
            samples.append(ProgressSample(at=float(t), position_s=position))
            if current and t >= current[0] and remaining == 0 and \
                    t < current[0] + current[1]:
                remaining = current[1]
            if remaining > 0:
                remaining -= 1
                if remaining == 0:
                    current = next(stall_iter, None)
            else:
                position += 1.0
        monitor = UiMonitor(samples)
        expected = sum(duration for _, duration in stalls)
        measured = monitor.total_stall_s()
        assert abs(measured - expected) <= 2.0 * (len(stalls) + 1)

    def test_empty_samples(self):
        monitor = UiMonitor([])
        assert monitor.startup_delay_s() is None
        assert monitor.stall_intervals() == []
        assert monitor.final_position_s() == 0.0


class TestSessionEdgeCases:
    def test_one_segment_content(self):
        result = run_session("H1", ConstantSchedule(mbps(4)),
                             duration_s=30.0, content_duration_s=4.0)
        assert result.player_state is PlayerState.ENDED
        assert result.playback_started

    def test_session_shorter_than_startup(self):
        result = run_session("S1", ConstantSchedule(kbps(100)),
                             duration_s=10.0, content_duration_s=60.0)
        assert not result.playback_started

    def test_dt_granularity_consistency(self):
        fine = run_session("H6", ConstantSchedule(mbps(2)),
                           duration_s=60.0, content_duration_s=60.0, dt=0.05)
        coarse = run_session("H6", ConstantSchedule(mbps(2)),
                             duration_s=60.0, content_duration_s=60.0, dt=0.2)
        assert fine.playback_started and coarse.playback_started
        fine_bitrate = fine.qoe.average_displayed_bitrate_bps
        coarse_bitrate = coarse.qoe.average_displayed_bitrate_bps
        assert fine_bitrate == pytest.approx(coarse_bitrate, rel=0.25)

    def test_rtt_sensitivity(self):
        slow_rtt = run_session("H2", ConstantSchedule(mbps(4)),
                               duration_s=90.0, content_duration_s=90.0,
                               rtt_s=0.2)
        fast_rtt = run_session("H2", ConstantSchedule(mbps(4)),
                               duration_s=90.0, content_duration_s=90.0,
                               rtt_s=0.02)
        # Non-persistent H2 suffers more from high RTT.
        assert slow_rtt.qoe.average_displayed_bitrate_bps <= \
            fast_rtt.qoe.average_displayed_bitrate_bps + 1.0

    def test_prefetch_all_indexes_loads_every_sidx(self):
        result = run_session("D3", ConstantSchedule(mbps(4)),
                             duration_s=40.0, content_duration_s=60.0)
        manifest = result.player.manifest
        assert manifest is not None
        assert all(track.segments is not None
                   for track in manifest.video_tracks)


class TestDownloadControlFlags:
    def test_pause_resume_cycle_in_player_state(self):
        server = OriginServer()
        built = build_service("S2", server, duration_s=400.0)
        session = Session(built, server, ConstantSchedule(mbps(10)))
        paused_seen = resumed_after_pause = False
        was_paused = False
        for _ in range(1800):
            session.network.advance(session.clock.dt)
            session.player.advance(session.clock.dt)
            session.clock.tick()
            paused = session.player._paused[StreamType.VIDEO]
            if paused:
                paused_seen = True
                was_paused = True
            elif was_paused:
                resumed_after_pause = True
                break
        assert paused_seen and resumed_after_pause
