"""Event-driven engine: byte-identity against the tick oracle.

The contract is absolute: for any spec, ``engine="event"`` must produce
the same bytes as the serial tick loop — records, QoE, player events,
RRC accounting, flows and UI samples — while executing only event
instants as real ticks.  These tests pin the full service grid, fault
and resilience scenarios, mid-transfer capacity steps, the tick
accounting invariant, the cache-key axis, and the blind-step budget
that makes the engine worth having.
"""

from __future__ import annotations

import math
from dataclasses import replace

import pytest

from repro.analysis.serialize import capture_to_json
from repro.blackbox.resilience import run_resilience_sweep, standard_fault_scenarios
from repro.cli import main
from repro.core.events import EventDrivenSession
from repro.core.outcome_cache import spec_key
from repro.core.parallel import (
    RunSpec,
    TickStats,
    execute_run_spec_with_result,
)
from repro.core.run import run_one
from repro.net.schedule import StepSchedule, TraceSchedule
from repro.obs import semantic_trace
from repro.services import ALL_SERVICE_NAMES
from repro.util import mbps
from tests.support import run_session

GRID_PROFILES = (2, 5, 9, 13)
DURATION_S = 45.0


def _capture(result):
    return capture_to_json(result.proxy.flows, result.player.ui_samples)


def _assert_identical(serial, event):
    assert event.qoe == serial.qoe
    assert event.duration_s == serial.duration_s
    assert event.player_state == serial.player_state
    assert event.events.events == serial.events.events
    assert event.rrc.energy_j == serial.rrc.energy_j
    assert event.rrc.time_in_state == serial.rrc.time_in_state
    assert event.player.position_s == serial.player.position_s
    assert _capture(event) == _capture(serial)


def _run_pair(spec):
    record_s, result_s = execute_run_spec_with_result(spec)
    record_e, result_e = execute_run_spec_with_result(
        replace(spec, engine="event")
    )
    assert record_e == record_s
    _assert_identical(result_s, result_e)
    return result_s, result_e


# ---------------------------------------------------------------------------
# Grid-wide byte identity
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", ALL_SERVICE_NAMES)
def test_grid_identity_event_vs_serial(name):
    for profile_id in GRID_PROFILES:
        _run_pair(
            RunSpec(service=name, profile_id=profile_id, duration_s=DURATION_S)
        )


@pytest.mark.parametrize("name", ["H1", "H2", "D1", "D3", "S1"])
def test_identity_on_step_schedule_mid_transfer(name):
    """Off-grid capacity steps inside active downloads stay invisible."""
    schedule = StepSchedule(
        steps=((0.0, mbps(6)), (7.35, mbps(0.9)), (13.0, mbps(4)), (31.27, mbps(2.2)))
    )
    serial = run_session(name, schedule, duration_s=60.0)
    event = run_session(name, schedule, duration_s=60.0, engine="event")
    _assert_identical(serial, event)


@pytest.mark.parametrize("scenario", standard_fault_scenarios(DURATION_S),
                         ids=lambda s: s.name)
def test_identity_under_faults(scenario):
    """Every stock fault scenario: dead air, resets, bursts, outages."""
    for name in ("H1", "D2", "S1"):
        _run_pair(
            RunSpec(
                service=name,
                profile_id=9,
                duration_s=DURATION_S,
                faults=scenario.faults,
            )
        )


def test_resilience_sweep_identical_across_engines():
    report_tick = run_resilience_sweep(
        ["H1", "D3"], profile_id=9, duration_s=DURATION_S, fast_forward=False
    )
    report_event = run_resilience_sweep(
        ["H1", "D3"], profile_id=9, duration_s=DURATION_S,
        fast_forward=False, engine="event",
    )
    assert report_event.cells == report_tick.cells
    assert report_event.engine == "event"
    assert report_event.to_json()["engine"] == "event"


def test_semantic_trace_equal_across_engines():
    spec = RunSpec(service="H1", profile_id=9, duration_s=DURATION_S)
    tick = run_one(spec, tracer=True)
    event = run_one(replace(spec, engine="event"), tracer=True)
    assert semantic_trace(event.trace) == semantic_trace(tick.trace)
    # The meta layer differs on purpose: the event engine emits
    # event_jump windows instead of ff_jump windows.
    kinds = {e.kind for e in event.trace}
    assert "event_jump" in kinds and "ff_jump" not in kinds


# ---------------------------------------------------------------------------
# Accounting: every simulated tick is either dispatched or batched
# ---------------------------------------------------------------------------


def test_tick_accounting_matches_serial_totals():
    for name in ("H1", "D2"):
        spec = RunSpec(service=name, profile_id=9, duration_s=DURATION_S)
        serial = spec.build()
        serial.run(spec.duration_s)
        event = replace(spec, engine="event").build()
        assert isinstance(event, EventDrivenSession)
        event.run(spec.duration_s)
        stats_s = TickStats.from_session(serial)
        stats_e = TickStats.from_session(event)
        assert stats_e.ticks_simulated == stats_s.ticks_simulated
        assert stats_e.ticks_executed == event.events_dispatched
        assert sum(event.dispatch_counts.values()) == event.events_dispatched
        # The point of the engine: almost no blind steps.  Serial
        # executes every tick blindly; the event engine's blind steps
        # are its unattributed ("noop") dispatches.
        noop = event.dispatch_counts.get("noop", 0)
        assert noop * 10 <= stats_s.ticks_executed / 10


def test_fault_change_dispatches_are_classified():
    scenario = next(
        s for s in standard_fault_scenarios(DURATION_S) if s.name == "dead-air"
    )
    spec = RunSpec(
        service="H1", profile_id=9, duration_s=DURATION_S,
        faults=scenario.faults, engine="event",
    )
    session = spec.build()
    session.run(spec.duration_s)
    assert session.dispatch_counts.get("fault_change", 0) > 0
    assert session.max_queue_depth >= 4  # two dead-air windows queued


def test_event_metrics_surface_through_observability():
    spec = RunSpec(service="H1", profile_id=9, duration_s=DURATION_S,
                   engine="event")
    outcome = run_one(spec)
    metrics = outcome.metrics
    dispatches = metrics.value("session.dispatches")
    assert dispatches is not None and dispatches > 0
    assert metrics.total("session.events") == dispatches
    assert metrics.value("session.events", type="transfer_complete") > 0
    assert metrics.value("session.queue_depth_max") is not None
    assert metrics.value("session.queue_pushes") > 0
    # Tick-mode counters stay coherent with the TickStats invariant.
    assert metrics.value("session.ticks", mode="executed") == dispatches


# ---------------------------------------------------------------------------
# Spec surface
# ---------------------------------------------------------------------------


def test_engine_participates_in_cache_key():
    spec = RunSpec(service="H1", profile_id=2, duration_s=DURATION_S)
    assert spec_key(spec) != spec_key(replace(spec, engine="event"))
    assert spec_key(spec) == spec_key(replace(spec, engine="tick"))


def test_unknown_engine_rejected():
    with pytest.raises(ValueError, match="unknown engine"):
        RunSpec(service="H1", duration_s=10.0, engine="warp").build()


def test_trace_schedule_next_change_skips_equal_samples():
    sched = TraceSchedule.from_samples([2e6, 2e6, 2e6, 5e6, 5e6, 2e6])
    assert sched.next_change_at(0.0) == 3.0  # skips the equal boundaries
    assert sched.next_change_at(3.2) == 5.0
    # Wrap-around: sample 5 and sample 0 are both 2e6, so the trace
    # repeat boundary itself is not a change — the next change is the
    # second repetition's rise at index 3.
    assert sched.next_change_at(5.0) == 9.0
    assert sched.next_change_at(17.4) == 21.0
    assert TraceSchedule.from_samples([4e6, 4e6]).next_change_at(1.0) == math.inf


def test_cli_trace_event_engine_prints_counters(capsys):
    code = main([
        "trace", "H1", "--bandwidth", "4", "--duration", "30",
        "--engine", "event",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "event_jump" in out
    assert "event engine:" in out
    assert "dispatches" in out and "queue depth max" in out
    assert "queue cancelled" in out
    assert "advance stops" in out


def test_cli_compare_accepts_engine(capsys, tmp_path):
    path = tmp_path / "metrics.json"
    code = main([
        "compare", "H1", "--profiles", "2", "--duration", "30",
        "--engine", "event", "--metrics-json", str(path),
    ])
    assert code == 0
    payload = path.read_text()
    assert "session.dispatches" in payload
