"""Segment replacement policy unit tests (section 4.1)."""

import pytest

from repro.media.track import StreamType
from repro.player.buffer import BufferedSegment, PlaybackBuffer
from repro.player.replacement import (
    DiscardTail,
    ExoV1Replacement,
    ImprovedReplacement,
    NoReplacement,
    ReplaceSingle,
    ReplacementContext,
)


def seg(index, level, duration=4.0):
    heights = {0: 270, 1: 360, 2: 480, 3: 720, 4: 1080}
    return BufferedSegment(
        stream_type=StreamType.VIDEO, index=index, start_s=index * duration,
        duration_s=duration, level=level,
        declared_bitrate_bps=(level + 1) * 500_000.0,
        size_bytes=1000, height=heights.get(level, 1080),
    )


def make_ctx(levels, *, play_pos=0.0, selected=2, last=1, now=100.0,
             allow_mid=False, start_index=1):
    buffer = PlaybackBuffer(allow_mid_replacement=allow_mid)
    for offset, level in enumerate(levels):
        buffer.insert(seg(start_index + offset, level))
    buffered_s = sum(s.duration_s for s in buffer.segments())
    return ReplacementContext(
        now=now, buffer=buffer, play_position_s=play_pos,
        buffer_s=buffered_s,
        selected_level=selected, last_fetched_level=last,
    )


class TestNoReplacement:
    def test_always_none(self):
        assert NoReplacement().consider(make_ctx([0, 0, 0])) is None


class TestExoV1:
    def test_triggers_on_upswitch(self):
        policy = ExoV1Replacement(min_buffer_s=5.0)
        ctx = make_ctx([1, 1, 1, 1, 1, 1, 1, 1], selected=2, last=1)
        action = policy.consider(ctx)
        assert isinstance(action, DiscardTail)
        # first segment past the protect window with level < selected
        assert action.from_index == 1

    def test_no_trigger_without_upswitch(self):
        policy = ExoV1Replacement(min_buffer_s=5.0)
        assert policy.consider(make_ctx([1, 1, 1], selected=1, last=1)) is None
        assert policy.consider(make_ctx([2, 2, 2], selected=1, last=2)) is None

    def test_no_trigger_on_low_buffer(self):
        policy = ExoV1Replacement(min_buffer_s=60.0)
        assert policy.consider(make_ctx([1, 1, 1], selected=2, last=1)) is None

    def test_skips_higher_quality_head(self):
        """Buffered [3, 3, 1, 1]: the cascade starts at the first segment
        below the new track, leaving the high-quality head alone."""
        policy = ExoV1Replacement(min_buffer_s=5.0)
        ctx = make_ctx([3, 3, 1, 1, 1], selected=2, last=1)
        action = policy.consider(ctx)
        assert isinstance(action, DiscardTail)
        assert action.from_index == 3

    def test_protect_window(self):
        policy = ExoV1Replacement(min_buffer_s=5.0, protect_s=3.0)
        # playhead at 4.0 inside segment 1; protect covers into segment 1
        ctx = make_ctx([0, 0, 0, 0], play_pos=4.0, selected=2, last=1)
        action = policy.consider(ctx)
        assert action.from_index == 2

    def test_cooldown(self):
        policy = ExoV1Replacement(min_buffer_s=5.0, cooldown_s=50.0)
        first = policy.consider(make_ctx([1] * 8, selected=2, last=1, now=100.0))
        assert first is not None
        again = policy.consider(make_ctx([1] * 8, selected=3, last=2, now=120.0))
        assert again is None
        later = policy.consider(make_ctx([1] * 8, selected=3, last=2, now=151.0))
        assert later is not None

    def test_warmup_none_last(self):
        policy = ExoV1Replacement()
        assert policy.consider(make_ctx([0, 0], selected=1, last=None)) is None


class TestImproved:
    def test_replaces_single_lowest_deadline_segment(self):
        policy = ImprovedReplacement(min_buffer_s=5.0, protect_s=5.0)
        ctx = make_ctx([1, 0, 1, 0], selected=2, allow_mid=True)
        action = policy.consider(ctx)
        assert isinstance(action, ReplaceSingle)
        assert action.index == 2  # first past protect window
        assert action.level == 2

    def test_only_strictly_higher(self):
        policy = ImprovedReplacement(min_buffer_s=5.0)
        ctx = make_ctx([2, 2, 2], selected=2, allow_mid=True)
        assert policy.consider(ctx) is None

    def test_halts_below_buffer_threshold(self):
        policy = ImprovedReplacement(min_buffer_s=30.0)
        ctx = make_ctx([0, 0, 0], selected=2, allow_mid=True)
        assert policy.consider(ctx) is None

    def test_quality_cap(self):
        policy = ImprovedReplacement(min_buffer_s=5.0, protect_s=2.0,
                                     quality_cap_height=480)
        # level 3 => 720p, above the cap; level 1 => 360p, below it.
        ctx = make_ctx([3, 3, 1, 3], selected=4, allow_mid=True)
        action = policy.consider(ctx)
        assert isinstance(action, ReplaceSingle)
        assert action.index == 3  # the 360p segment (start_index=1 offset 2)

    def test_cooldown_limits_rate(self):
        policy = ImprovedReplacement(min_buffer_s=5.0, cooldown_s=10.0)
        first = policy.consider(make_ctx([0] * 5, selected=2, allow_mid=True,
                                         now=50.0))
        assert first is not None
        blocked = policy.consider(make_ctx([0] * 5, selected=2, allow_mid=True,
                                           now=55.0))
        assert blocked is None
        after = policy.consider(make_ctx([0] * 5, selected=2, allow_mid=True,
                                         now=61.0))
        assert after is not None

    def test_protect_window_keeps_playhead_segment(self):
        policy = ImprovedReplacement(min_buffer_s=1.0, protect_s=5.0)
        ctx = make_ctx([0, 0], play_pos=4.0, selected=2, allow_mid=True)
        action = policy.consider(ctx)
        # segment 1 starts at 4.0 <= 4+5; segment 2 starts at 8.0 <= 9 too
        assert action is None
