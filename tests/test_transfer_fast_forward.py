"""Event-horizon tick batching: bit-identity and accounting.

The transfer fast-forward must be invisible in every observable output:
for each service x profile cell the flows, UI samples, events, RRC
accounting and QoE must be byte-identical to the serial loop, with the
only difference being how many ticks were individually executed.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.analysis.serialize import capture_to_json
from repro.core.parallel import (
    RunSpec,
    SweepRunner,
    TickStats,
    execute_run_spec_with_result,
    execute_run_spec_with_stats,
    sweep_grid,
)
from repro.core.session import Session
from tests.support import run_session
from repro.net.schedule import ConstantSchedule, StepSchedule
from repro.player.player import PlayerState
from repro.server.origin import OriginServer
from repro.services import ALL_SERVICE_NAMES
from repro.services.profiles import build_service
from repro.util import mbps

GRID_PROFILES = (2, 5, 9, 13)
DURATION_S = 45.0


def _capture(result):
    return capture_to_json(result.proxy.flows, result.player.ui_samples)


def _assert_identical(serial, jumped):
    assert jumped.qoe == serial.qoe
    assert jumped.duration_s == serial.duration_s
    assert jumped.player_state == serial.player_state
    assert jumped.events.events == serial.events.events
    assert jumped.rrc.energy_j == serial.rrc.energy_j
    assert jumped.rrc.time_in_state == serial.rrc.time_in_state
    assert jumped.player.position_s == serial.player.position_s
    assert _capture(jumped) == _capture(serial)


# ---------------------------------------------------------------------------
# Grid-wide invariance
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", ALL_SERVICE_NAMES)
def test_grid_invariance_serial_vs_fast_forward(name):
    """Byte-identical serialized output for every profile in the sample."""
    for profile_id in GRID_PROFILES:
        spec = RunSpec(service=name, profile_id=profile_id, duration_s=DURATION_S)
        record_s, result_s = execute_run_spec_with_result(spec)
        record_f, result_f = execute_run_spec_with_result(
            replace(spec, fast_forward=True)
        )
        assert record_f == record_s, f"profile {profile_id}"
        _assert_identical(result_s, result_f)


@pytest.mark.parametrize("name", ["H1", "H2", "D1", "D3", "S1"])
def test_invariance_on_step_schedule_mid_transfer(name):
    """Capacity steps landing inside active downloads stay invisible.

    Boundaries are deliberately not tick-aligned so the window clamp
    (``next_change_at``) is exercised off-grid.
    """
    schedule = StepSchedule(
        steps=((0.0, mbps(6)), (7.35, mbps(0.9)), (13.0, mbps(4)), (31.27, mbps(2.2)))
    )
    serial = run_session(name, schedule, duration_s=60.0)
    jumped = run_session(name, schedule, duration_s=60.0, fast_forward=True)
    _assert_identical(serial, jumped)


# ---------------------------------------------------------------------------
# Tick accounting
# ---------------------------------------------------------------------------


def _grid_stats(transfer_fast_forward):
    specs = sweep_grid(
        ALL_SERVICE_NAMES,
        (2, 9),
        duration_s=DURATION_S,
        fast_forward=True,
        transfer_fast_forward=transfer_fast_forward,
    )
    total = TickStats.ZERO
    for _, stats in SweepRunner(workers=0).run_with_stats(specs):
        total = total + stats
    return total


def test_transfer_batching_cuts_real_ticks_vs_idle_only():
    idle_only = _grid_stats(transfer_fast_forward=False)
    full = _grid_stats(transfer_fast_forward=None)
    assert idle_only.transfer_fast_forwarded_ticks == 0
    assert full.transfer_fast_forward_jumps > 0
    # Same simulated timeline either way; only the execution mix shifts.
    assert full.ticks_simulated == idle_only.ticks_simulated
    assert full.idle_fast_forwarded_ticks == idle_only.idle_fast_forwarded_ticks
    # The headline claim (>= 3x on the full grid, tracked by
    # benchmarks/BENCH_core.json); keep slack on this 2-profile sample.
    assert idle_only.ticks_executed / full.ticks_executed >= 2.5


def test_tick_stats_consistency_and_addition():
    spec = RunSpec(service="H4", profile_id=5, duration_s=DURATION_S)
    record_s, stats_s = execute_run_spec_with_stats(spec)
    record_f, stats_f = execute_run_spec_with_stats(replace(spec, fast_forward=True))
    assert record_f == record_s  # stats ride outside the record
    assert stats_s.idle_fast_forwarded_ticks == 0
    assert stats_s.transfer_fast_forwarded_ticks == 0
    assert stats_f.ticks_simulated == stats_s.ticks_executed
    assert stats_f.ticks_executed < stats_s.ticks_executed
    combined = stats_s + stats_f
    assert combined.ticks_simulated == 2 * stats_s.ticks_executed
    assert TickStats.ZERO + stats_f == stats_f


def test_transfer_fast_forward_counters_and_opt_out():
    server = OriginServer()
    built = build_service("H1", server, duration_s=60.0, content_seed=11)
    session = Session(built, server, ConstantSchedule(mbps(3)), fast_forward=True)
    session.run(60.0)
    assert session.transfer_fast_forwarded_ticks > 0
    assert session.transfer_fast_forward_jumps > 0

    server = OriginServer()
    built = build_service("H1", server, duration_s=60.0, content_seed=11)
    opted_out = Session(
        built,
        server,
        ConstantSchedule(mbps(3)),
        fast_forward=True,
        transfer_fast_forward=False,
    )
    opted_out.run(60.0)
    assert opted_out.transfer_fast_forwarded_ticks == 0


# ---------------------------------------------------------------------------
# Player no-op-window vetting edges
# ---------------------------------------------------------------------------


def _fresh_session(name="H1", rate=mbps(4)):
    server = OriginServer()
    built = build_service(name, server, duration_s=60.0, content_seed=11)
    return Session(built, server, ConstantSchedule(rate))


def test_transfer_noop_ticks_init_waits_on_manifest():
    session = _fresh_session()
    player = session.player
    assert player.state is PlayerState.INIT
    # Before the manifest fetch is issued, the player would act this tick.
    assert player.transfer_noop_ticks(0.1, 500) == 0
    session.network.advance(0.1)
    player.advance(0.1)
    session.clock.tick()
    # Manifest request is now in flight: playback can only wait for it.
    assert player.manifest is None
    assert player.transfer_noop_ticks(0.1, 500) == 500


def test_transfer_noop_ticks_ended_is_unbounded():
    session = _fresh_session()
    result = session.run(600.0)
    assert result.player_state is PlayerState.ENDED
    assert session.player.transfer_noop_ticks(0.1, 123) == 123


def test_transfer_noop_ticks_requires_static_slots_contract():
    session = _fresh_session()
    session.run(5.0)  # get past INIT into steady streaming
    player = session.player
    assert player.manifest is not None
    player.scheduler.slots_static_while_busy = False
    assert player.transfer_noop_ticks(0.1, 100) == 0


def test_fast_forward_session_matches_on_constant_schedule():
    serial = run_session("S1", ConstantSchedule(mbps(2.5)), duration_s=90.0)
    jumped = run_session(
        "S1", ConstantSchedule(mbps(2.5)), duration_s=90.0, fast_forward=True
    )
    _assert_identical(serial, jumped)
