"""Property tests: the vectorized water-fill is bit-identical to the
scalar oracle.

The fleet path auto-dispatches to :func:`water_fill_vec` above
``VECTORIZE_MIN_FLOWS`` flows, so byte-identity of every fleet result
rests on these two functions returning *equal floats*, not merely
close ones.  The scalar loop only accumulates allocations in its
terminal round (``demands[i] - allocations[i]`` with ``allocations[i]
== 0.0``), which is what makes exact equality achievable — and
testable.
"""

from __future__ import annotations

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.link import (
    VECTORIZE_MIN_FLOWS,
    allocate,
    water_fill,
    water_fill_vec,
)

np = pytest.importorskip("numpy")


demand_values = st.one_of(
    st.just(0.0),
    st.floats(min_value=0.0, max_value=1e-11),   # below the epsilon
    st.floats(min_value=1e-12, max_value=10.0),  # tolerance band
    st.floats(min_value=0.0, max_value=5e7),     # realistic byte rates
)

demand_lists = st.lists(demand_values, min_size=0, max_size=64)


@settings(max_examples=400, deadline=None)
@given(demands=demand_lists, data=st.data())
def test_vectorized_water_fill_is_bit_identical(demands, data):
    capacity = data.draw(
        st.one_of(
            st.just(0.0),
            st.just(1e-12),
            st.floats(min_value=0.0, max_value=1e8),
            # Exercise the exhaustion branch: capacity near sum(demands).
            st.just(sum(demands)),
            st.just(sum(demands) * 0.5),
        )
    )
    scalar = water_fill(capacity, list(demands))
    vector = water_fill_vec(capacity, list(demands))
    assert scalar == vector  # float-exact, not approx


@settings(max_examples=200, deadline=None)
@given(demands=demand_lists)
def test_vectorized_results_are_builtin_floats(demands):
    for value in water_fill_vec(100.0, list(demands)):
        assert type(value) is float  # np.float64 must not leak out


def test_zero_demands_all_zero():
    demands = [0.0] * 30
    assert water_fill_vec(1e6, demands) == [0.0] * 30
    assert water_fill(1e6, demands) == water_fill_vec(1e6, demands)


def test_single_flow_gets_min_of_demand_and_capacity():
    assert water_fill_vec(5.0, [3.0]) == [3.0]
    assert water_fill_vec(2.0, [3.0]) == [2.0]
    assert water_fill_vec(2.0, [3.0]) == water_fill(2.0, [3.0])


def test_tolerance_edge_demand_exactly_at_share_epsilon():
    # Three flows, capacity 9: share 3.0; a demand at share + 1e-12
    # sits exactly on the satisfaction boundary.
    demands = [3.0 + 1e-12, 5.0, 1.0]
    assert water_fill(9.0, demands) == water_fill_vec(9.0, demands)


def test_negative_inputs_rejected_like_scalar():
    with pytest.raises(ValueError):
        water_fill_vec(-1.0, [1.0])
    with pytest.raises(ValueError):
        water_fill_vec(1.0, [-1.0, 2.0])


def test_allocate_dispatches_by_flow_count():
    few = [1.0] * (VECTORIZE_MIN_FLOWS - 1)
    many = [1.0] * (VECTORIZE_MIN_FLOWS + 1)
    # Either path must produce the oracle's answer.
    assert allocate(10.0, few) == water_fill(10.0, few)
    assert allocate(10.0, many) == water_fill(10.0, many)


@settings(max_examples=100, deadline=None)
@given(
    demands=st.lists(
        st.floats(min_value=0.0, max_value=5e6),
        min_size=VECTORIZE_MIN_FLOWS,
        max_size=3 * VECTORIZE_MIN_FLOWS,
    ),
    capacity=st.floats(min_value=0.0, max_value=1e8),
)
def test_allocate_large_fleets_match_oracle(demands, capacity):
    assert allocate(capacity, list(demands)) == water_fill(
        capacity, list(demands)
    )
