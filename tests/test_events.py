"""Event-queue ordering invariants (property-based).

The engine's determinism rests on the queue being totally ordered and
loss-free: ties at equal timestamps must break by (priority, push
order) on every platform, and a cancel + re-register cycle must never
lose a live event or resurrect a dead one.  Hypothesis drives seeded
churn against a plain-dict model of the queue.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.events import Event, EventQueue, EventType

# Small time/priority domains force plenty of exact ties.
times = st.sampled_from([0.0, 0.1, 0.1, 0.5, 1.0, 2.5])
priorities = st.integers(min_value=-2, max_value=2)
event_types = st.sampled_from(list(EventType))


def drain(queue: EventQueue) -> list[Event]:
    out = []
    while True:
        event = queue.pop()
        if event is None:
            return out
        out.append(event)


@given(st.lists(st.tuples(times, priorities, event_types), max_size=50))
def test_pop_order_is_time_priority_then_push_order(entries):
    queue = EventQueue()
    pushed = [queue.push(t, typ, priority=p) for t, p, typ in entries]
    popped = drain(queue)
    assert len(popped) == len(pushed)
    # Sorting the pushed handles by the documented key is exactly the
    # pop order — seq (push order) is the final tie-break, so the sort
    # is total and the expectation unique.
    expected = sorted(pushed, key=lambda e: (e.time, e.priority, e.seq))
    assert popped == expected


@given(st.lists(st.tuples(times, priorities, event_types), max_size=50))
def test_equal_keys_pop_in_push_order(entries):
    queue = EventQueue()
    pushed = [queue.push(t, typ, priority=p) for t, p, typ in entries]
    popped = drain(queue)
    for key in {(e.time, e.priority) for e in pushed}:
        group = [e for e in popped if (e.time, e.priority) == key]
        assert [e.seq for e in group] == sorted(e.seq for e in group)


@given(
    st.lists(
        st.one_of(
            st.tuples(st.just("push"), times, priorities),
            st.tuples(st.just("cancel"), st.integers(0, 200), st.just(0)),
            st.tuples(st.just("pop"), st.just(0.0), st.just(0)),
            st.tuples(st.just("pop_due"), times, st.just(0)),
        ),
        max_size=120,
    )
)
@settings(max_examples=200)
def test_churn_never_loses_or_duplicates_events(ops):
    """Model check: queue contents == dict model under seeded churn."""
    queue = EventQueue()
    live: dict[int, Event] = {}  # seq -> handle, the model
    handles: list[Event] = []  # every handle ever, for cancel targets
    popped_seqs: list[int] = []
    for op, a, b in ops:
        if op == "push":
            event = queue.push(a, EventType.PLAYER_WAKE, priority=b)
            live[event.seq] = event
            handles.append(event)
        elif op == "cancel" and handles:
            target = handles[a % len(handles)]
            queue.cancel(target)  # idempotent, may hit dead events
            live.pop(target.seq, None)
        elif op == "pop":
            event = queue.pop()
            if event is None:
                assert not live
            else:
                expected = min(
                    live.values(), key=lambda e: (e.time, e.priority, e.seq)
                )
                assert event is expected
                del live[event.seq]
                popped_seqs.append(event.seq)
        elif op == "pop_due":
            due = queue.pop_due(a)
            expected = sorted(
                (e for e in live.values() if e.time <= a),
                key=lambda e: (e.time, e.priority, e.seq),
            )
            assert due == expected
            for event in due:
                del live[event.seq]
                popped_seqs.append(event.seq)
        assert len(queue) == len(live)
    assert len(popped_seqs) == len(set(popped_seqs))  # no duplicates
    assert drain(queue) == sorted(
        live.values(), key=lambda e: (e.time, e.priority, e.seq)
    )


def test_cancel_then_reregister_keeps_exactly_one_live():
    queue = EventQueue()
    handle = None
    for i in range(10):
        if handle is not None:
            queue.cancel(handle)
        handle = queue.push(float(i), EventType.PLAYER_WAKE)
        assert len(queue) == 1
    assert queue.pop() is handle
    assert queue.pop() is None
    assert len(queue) == 0


def test_cancel_after_pop_is_harmless():
    queue = EventQueue()
    event = queue.push(1.0, EventType.TRANSFER_COMPLETE)
    assert queue.pop() is event
    queue.cancel(event)  # stale handle: must not corrupt the live count
    queue.cancel(event)
    assert len(queue) == 0
    assert queue.next_time() == math.inf


def test_peek_and_next_time_skip_cancelled_heads():
    queue = EventQueue()
    first = queue.push(1.0, EventType.PLAYER_WAKE)
    second = queue.push(2.0, EventType.FAULT_CHANGE)
    queue.cancel(first)
    assert queue.peek() is second
    assert queue.next_time() == 2.0
    assert queue.pop_due(1.5) == []
    assert queue.pop_due(2.0) == [second]


def test_pushed_total_counts_registrations_not_occupancy():
    queue = EventQueue()
    for i in range(5):
        queue.cancel(queue.push(float(i), EventType.PLAYER_WAKE))
    assert queue.pushed_total == 5
    assert len(queue) == 0


def test_cancelled_total_counts_explicit_cancels_only():
    queue = EventQueue()
    kept = queue.push(1.0, EventType.PLAYER_WAKE)
    dropped = queue.push(2.0, EventType.PLAYER_WAKE)
    queue.cancel(dropped)
    queue.cancel(dropped)  # idempotent: second cancel must not count
    assert queue.cancelled_total == 1
    assert queue.pop() is kept
    assert queue.pop() is None
    assert queue.cancelled_total == 1  # pops are not cancels


@given(
    st.lists(st.tuples(times, priorities), min_size=2, max_size=30),
    st.data(),
)
@settings(max_examples=200)
def test_producer_repush_never_reorders_other_events(entries, data):
    """Cancel + re-push of one producer's deadline leaves peers alone.

    This is the engine's re-arm move: a producer whose state changed
    cancels its own handle and registers a new deadline.  Every other
    event must keep its exact relative order, and the re-pushed event
    must sort behind existing events at the same (time, priority) —
    later registration means later dispatch, deterministically.
    """
    queue = EventQueue()
    pushed = [queue.push(t, EventType.PLAYER_WAKE, priority=p)
              for t, p in entries]
    victim = data.draw(st.sampled_from(pushed))
    new_time = data.draw(times)
    new_priority = data.draw(priorities)
    queue.cancel(victim)
    replacement = queue.push(
        new_time, EventType.PLAYER_WAKE, priority=new_priority
    )
    popped = drain(queue)
    others = [event for event in popped if event is not replacement]
    assert others == sorted(
        (e for e in pushed if e is not victim),
        key=lambda e: (e.time, e.priority, e.seq),
    )
    # The replacement drew the highest seq, so within its equal-key
    # group it pops last.
    group = [e for e in popped
             if (e.time, e.priority) == (new_time, new_priority)]
    assert group[-1] is replacement


@given(
    st.lists(
        st.one_of(
            st.tuples(st.just("push"), times, priorities),
            st.tuples(st.just("cancel"), st.integers(0, 400), st.just(0)),
            st.tuples(st.just("pop"), st.just(0.0), st.just(0)),
        ),
        max_size=300,
    )
)
@settings(max_examples=200)
def test_compaction_bounds_heap_size_and_preserves_order(ops):
    """Lazy cancel must not let dead entries dominate the heap.

    The engine's long multi-session runs churn thousands of wakes; the
    compaction rule keeps the backing heap within a constant factor of
    the live count (above the small-queue threshold) without disturbing
    pop order.
    """
    queue = EventQueue()
    live: dict[int, Event] = {}
    handles: list[Event] = []
    for op, a, b in ops:
        if op == "push":
            event = queue.push(a, EventType.PLAYER_WAKE, priority=b)
            live[event.seq] = event
            handles.append(event)
        elif op == "cancel" and handles:
            target = handles[a % len(handles)]
            queue.cancel(target)
            live.pop(target.seq, None)
        elif op == "pop":
            event = queue.pop()
            if event is not None:
                live.pop(event.seq, None)
        assert len(queue) == len(live)
        assert len(queue._heap) <= max(64, 2 * len(live))
    assert drain(queue) == sorted(
        live.values(), key=lambda e: (e.time, e.priority, e.seq)
    )
