"""Methodology tests: the analyzer/UI/buffer inferences must reconstruct
ground truth from nothing but flows and seekbar samples."""

import pytest

from repro.analysis.proxy import FlowRecord
from repro.analysis.qoe import compute_qoe
from repro.analysis.traffic import TrafficAnalyzer
from repro.analysis.ui import UiMonitor
from repro.analysis.whatif import analyze_segment_replacement
from repro.manifest.types import Protocol
from repro.media.track import StreamType
from repro.net.http import HttpStatus
from repro.player.events import ProgressSample, SegmentCompleted, StallEnded


def analyzer_for(result) -> TrafficAnalyzer:
    return result.analyzer


class TestTrafficAnalyzerHls(object):
    def test_protocol_detected(self, h1_session):
        assert h1_session.analyzer.protocol is Protocol.HLS
        assert not h1_session.analyzer.has_separate_audio

    def test_track_ladder_recovered(self, h1_session):
        from repro.services import get_service
        declared = h1_session.analyzer.declared_bitrates_bps()
        expected = [k * 1000 for k in get_service("H1").ladder_kbps]
        assert declared == pytest.approx(expected, abs=1.0)

    def test_segment_duration_recovered(self, h1_session):
        assert h1_session.analyzer.segment_duration_s() == pytest.approx(4.0)

    def test_downloads_match_ground_truth(self, h1_session):
        truth = [e for e in h1_session.events.of_type(SegmentCompleted)
                 if e.stream_type is StreamType.VIDEO]
        observed = h1_session.analyzer.media_downloads(StreamType.VIDEO)
        assert len(observed) == len(truth)
        truth_pairs = sorted((e.index, e.level) for e in truth)
        observed_pairs = sorted((d.index, d.level) for d in observed)
        assert observed_pairs == truth_pairs

    def test_download_sizes_match(self, h1_session):
        truth = {(e.index, e.level): e.size_bytes
                 for e in h1_session.events.of_type(SegmentCompleted)}
        for download in h1_session.analyzer.media_downloads():
            assert truth[(download.index, download.level)] == \
                download.size_bytes

    def test_connection_stats_single_persistent(self, h1_session):
        stats = h1_session.analyzer.connection_stats(h1_session.proxy.flows)
        assert stats["distinct_connections"] == 1
        assert stats["persistent"]

    def test_non_persistent_detected(self):
        from tests.conftest import quick_session
        result = quick_session("H2", rate_mbps=4.0, duration_s=60.0)
        stats = result.analyzer.connection_stats(result.proxy.flows)
        assert not stats["persistent"]


class TestTrafficAnalyzerDash:
    def test_inline_addressing(self, d1_session):
        assert d1_session.analyzer.protocol is Protocol.DASH
        assert d1_session.analyzer.has_separate_audio

    def test_parallel_connections_observed(self, d1_session):
        stats = d1_session.analyzer.connection_stats(d1_session.proxy.flows)
        assert stats["distinct_connections"] == 6
        assert stats["max_concurrent_requests"] >= 3
        assert stats["persistent"]

    def test_audio_and_video_downloads_attributed(self, d1_session):
        video = d1_session.analyzer.media_downloads(StreamType.VIDEO)
        audio = d1_session.analyzer.media_downloads(StreamType.AUDIO)
        assert video and audio
        assert {d.duration_s for d in audio} <= {2.0}

    def test_encrypted_mpd_falls_back_to_sidx(self, d3_session):
        """Footnote 4: D3's MPD is unreadable; sidx still yields segment
        sizes/durations and peak-bitrate-derived declared bitrates."""
        analyzer = d3_session.analyzer
        assert analyzer.encrypted_manifest_seen
        assert analyzer.manifest is None
        video = analyzer.media_downloads(StreamType.VIDEO)
        assert video
        truth = [e for e in d3_session.events.of_type(SegmentCompleted)
                 if e.stream_type is StreamType.VIDEO]
        assert len(video) == len(truth)
        # sizes recovered exactly from sidx byte ranges
        truth_sizes = sorted(e.size_bytes for e in truth)
        assert sorted(d.size_bytes for d in video) == truth_sizes

    def test_split_subsegments_coalesced(self, d3_session):
        """D3 issues 3 range requests per segment; the analyzer must
        coalesce them into one download per segment."""
        video_flows = [
            f for f in d3_session.proxy.completed_flows()
            if f.byte_range is not None and (f.size_bytes or 0) > 2000
        ]
        downloads = d3_session.analyzer.media_downloads(StreamType.VIDEO)
        assert len(video_flows) > len(downloads)


class TestTrafficAnalyzerSmooth:
    def test_fragment_attribution(self, s2_session):
        analyzer = s2_session.analyzer
        assert analyzer.protocol is Protocol.SMOOTH
        truth = [e for e in s2_session.events.of_type(SegmentCompleted)
                 if e.stream_type is StreamType.VIDEO]
        assert len(analyzer.media_downloads(StreamType.VIDEO)) == len(truth)


class TestUiMonitor:
    def test_startup_delay_close_to_truth(self, h1_session):
        true_delay = h1_session.true_startup_delay_s
        ui_delay = h1_session.ui.startup_delay_s()
        assert ui_delay is not None
        assert abs(ui_delay - true_delay) <= 2.0  # 1 Hz quantisation

    def test_stall_detection_from_samples(self):
        samples = (
            [ProgressSample(at=float(t), position_s=0.0) for t in range(3)]
            + [ProgressSample(at=float(3 + t), position_s=float(t))
               for t in range(5)]
            + [ProgressSample(at=float(8 + t), position_s=4.0)
               for t in range(6)]  # frozen 6 s
            + [ProgressSample(at=float(14 + t), position_s=4.0 + t)
               for t in range(5)]
        )
        monitor = UiMonitor(samples)
        intervals = monitor.stall_intervals()
        assert len(intervals) == 1
        assert intervals[0].duration_s == pytest.approx(6.0, abs=1.1)
        assert monitor.startup_delay_s() == 4.0

    def test_trailing_freeze_not_a_stall(self):
        samples = [ProgressSample(at=float(t), position_s=min(t, 5))
                   for t in range(20)]
        assert UiMonitor(samples).stall_intervals() == []

    def test_position_at(self):
        samples = [ProgressSample(at=float(t), position_s=float(t))
                   for t in range(5)]
        monitor = UiMonitor(samples)
        assert monitor.position_at(2.5) == 2.0
        assert monitor.position_at(-1.0) == 0.0

    def test_stall_totals_match_ground_truth(self, profiles_300):
        from tests.support import run_session
        result = run_session("S2", profiles_300[2], duration_s=300.0)
        true_stall = result.events.total_stall_s()
        ui_stall = result.ui.total_stall_s()
        assert abs(ui_stall - true_stall) <= max(
            2.0 * (result.events.stall_count() + 1), 4.0
        )


class TestBufferInference:
    def test_matches_player_buffer(self, h1_session):
        estimator = h1_session.buffer_estimator
        inferred = estimator.occupancy_at(
            h1_session.duration_s - 1.0, StreamType.VIDEO
        )
        actual = h1_session.player.buffer_s(StreamType.VIDEO)
        assert inferred == pytest.approx(actual, abs=5.0)

    def test_series_shape(self, h1_session):
        series = h1_session.buffer_estimator.series(60.0, step_s=1.0)
        assert len(series) == 61
        assert series[0].video_s == 0.0
        assert all(point.audio_s is None for point in series)

    def test_audio_series_present_for_dash(self, d1_session):
        series = d1_session.buffer_estimator.series(60.0)
        assert any(point.audio_s is not None for point in series)


class TestQoe:
    def test_report_fields(self, h1_session):
        qoe = h1_session.qoe
        assert qoe.startup_delay_s is not None
        assert qoe.played_s > 60.0
        assert qoe.average_displayed_bitrate_bps > 0
        assert qoe.media_bytes > 0
        assert qoe.total_bytes >= qoe.media_bytes

    def test_displayed_sequence_contiguous(self, h1_session):
        indexes = [d.index for d in h1_session.qoe.displayed]
        assert indexes == list(range(indexes[0], indexes[0] + len(indexes)))

    def test_switch_counts(self, h1_session):
        qoe = h1_session.qoe
        assert qoe.switch_count >= 1  # startup track ramps up
        assert qoe.nonconsecutive_switch_count <= qoe.switch_count

    def test_displayed_time_never_exceeds_played(self, h1_session):
        qoe = h1_session.qoe
        total = sum(d.played_duration_s for d in qoe.displayed)
        assert total <= qoe.played_s + 4.0 + 1e-6  # one segment tolerance

    def test_level_time_breakdown(self, h1_session):
        shares = h1_session.qoe.displayed_time_by_level()
        assert sum(shares.values()) == pytest.approx(
            sum(d.played_duration_s for d in h1_session.qoe.displayed)
        )


class TestWhatIf:
    def test_no_sr_detected_for_plain_service(self, h1_session):
        # constant ample bandwidth: the top track is reached quickly and
        # H1's SR has nothing to replace after the ramp.
        whatif = analyze_segment_replacement(
            h1_session.analyzer.downloads, h1_session.ui
        )
        assert whatif.bytes_with_sr >= whatif.bytes_without_sr

    def test_replacement_classification(self):
        from tests.support import run_session
        from repro.net.schedule import StepSchedule
        from repro.util import kbps, mbps
        schedule = StepSchedule(steps=((0.0, kbps(900)), (60.0, mbps(6))))
        result = run_session("H4", schedule, duration_s=180.0,
                             content_duration_s=400.0)
        whatif = analyze_segment_replacement(result.analyzer.downloads,
                                             result.ui)
        assert whatif.sr_detected
        assert whatif.extra_bytes > 0
        assert whatif.replacements
        total = (whatif.fraction_replacements("higher")
                 + whatif.fraction_replacements("equal")
                 + whatif.fraction_replacements("lower"))
        assert total == pytest.approx(1.0)
        assert whatif.replaced_run_lengths
        assert sum(whatif.replaced_run_lengths) == len(whatif.replacements)

    def test_without_sr_view_keeps_first_download(self):
        from tests.support import run_session
        from repro.net.schedule import StepSchedule
        from repro.util import kbps, mbps
        schedule = StepSchedule(steps=((0.0, kbps(900)), (60.0, mbps(6))))
        result = run_session("H4", schedule, duration_s=180.0,
                             content_duration_s=400.0)
        whatif = analyze_segment_replacement(result.analyzer.downloads,
                                             result.ui)
        displayed_with = {d.index: d for d in whatif.displayed_with_sr}
        displayed_without = {d.index: d for d in whatif.displayed_without_sr}
        for event in whatif.replacements:
            with_sr = displayed_with.get(event.index)
            without = displayed_without.get(event.index)
            if with_sr is None or without is None:
                continue  # replaced but never rendered before session end
            # the no-SR emulation can never show higher quality than SR
            # did for a replaced index that was upgraded
            if event.comparison == "higher":
                assert without.level <= with_sr.level


class TestProxyRecords:
    def test_every_flow_completes(self, h1_session):
        flows = h1_session.proxy.flows
        assert flows
        assert all(flow.complete for flow in flows)

    def test_flow_timings_ordered(self, h1_session):
        for flow in h1_session.proxy.completed_flows():
            assert flow.completed_at >= flow.started_at

    def test_manifest_payload_captured(self, h1_session):
        texts = [f for f in h1_session.proxy.flows if f.text]
        assert texts and texts[0].text.startswith("#EXTM3U")

    def test_total_bytes(self, h1_session):
        assert h1_session.proxy.total_bytes() == sum(
            f.size_bytes for f in h1_session.proxy.completed_flows()
        )
