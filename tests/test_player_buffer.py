"""Playback buffer semantics, including the deque limitation."""

import pytest

from repro.media.track import StreamType
from repro.player.buffer import (
    BufferedSegment,
    MidReplacementUnsupported,
    PlaybackBuffer,
)


def seg(index, level=0, duration=4.0, size=1000):
    return BufferedSegment(
        stream_type=StreamType.VIDEO,
        index=index,
        start_s=index * duration,
        duration_s=duration,
        level=level,
        declared_bitrate_bps=500_000.0 * (level + 1),
        size_bytes=size,
        height=360 * (level + 1),
    )


class TestInsertAndOccupancy:
    def test_empty_buffer(self):
        buffer = PlaybackBuffer()
        assert buffer.occupancy_s(0.0) == 0.0
        assert not buffer.has_content_at(0.0)
        assert buffer.end_index() is None

    def test_contiguous_occupancy(self):
        buffer = PlaybackBuffer()
        for i in range(3):
            buffer.insert(seg(i))
        assert buffer.occupancy_s(0.0) == pytest.approx(12.0)
        assert buffer.occupancy_s(5.0) == pytest.approx(7.0)
        assert buffer.contiguous_segment_count(0.0) == 3

    def test_hole_limits_occupancy(self):
        buffer = PlaybackBuffer()
        buffer.insert(seg(0))
        buffer.insert(seg(2))  # out-of-order arrival leaves a hole at 1
        assert buffer.occupancy_s(0.0) == pytest.approx(4.0)
        buffer.insert(seg(1))
        assert buffer.occupancy_s(0.0) == pytest.approx(12.0)

    def test_occupancy_mid_segment(self):
        buffer = PlaybackBuffer()
        buffer.insert(seg(0))
        assert buffer.occupancy_s(2.5) == pytest.approx(1.5)

    def test_duplicate_insert_rejected(self):
        buffer = PlaybackBuffer()
        buffer.insert(seg(0))
        with pytest.raises(ValueError, match="already buffered"):
            buffer.insert(seg(0))

    def test_segment_covering(self):
        buffer = PlaybackBuffer()
        buffer.insert(seg(1))
        assert buffer.segment_covering(5.0).index == 1
        assert buffer.segment_covering(0.0) is None
        assert buffer.segment_covering(8.0) is None  # end is exclusive

    def test_total_bytes_tracking(self):
        buffer = PlaybackBuffer()
        buffer.insert(seg(0, size=100))
        buffer.insert(seg(1, size=200))
        assert buffer.total_bytes() == 300
        assert buffer.total_inserted_bytes == 300


class TestConsume:
    def test_consume_until_releases_played(self):
        buffer = PlaybackBuffer()
        for i in range(3):
            buffer.insert(seg(i))
        released = buffer.consume_until(8.0)
        assert [s.index for s in released] == [0, 1]
        assert len(buffer) == 1

    def test_consume_keeps_partial(self):
        buffer = PlaybackBuffer()
        buffer.insert(seg(0))
        assert buffer.consume_until(3.9) == []
        assert 0 in buffer


class TestDiscardTail:
    def test_discard_from_index(self):
        buffer = PlaybackBuffer()
        for i in range(5):
            buffer.insert(seg(i, level=i))
        dropped = buffer.discard_tail_from(2)
        assert [s.index for s in dropped] == [2, 3, 4]
        assert buffer.end_index() == 1
        assert buffer.discarded_segments == dropped

    def test_discard_empty_range(self):
        buffer = PlaybackBuffer()
        buffer.insert(seg(0))
        assert buffer.discard_tail_from(5) == []


class TestMidReplacement:
    def test_deque_buffer_refuses_mid_replacement(self):
        buffer = PlaybackBuffer(allow_mid_replacement=False)
        for i in range(3):
            buffer.insert(seg(i))
        with pytest.raises(MidReplacementUnsupported):
            buffer.replace_single(seg(1, level=2))

    def test_improved_buffer_swaps_single(self):
        buffer = PlaybackBuffer(allow_mid_replacement=True)
        for i in range(3):
            buffer.insert(seg(i, level=0))
        old = buffer.replace_single(seg(1, level=2))
        assert old.level == 0
        assert buffer.get(1).level == 2
        assert buffer.occupancy_s(0.0) == pytest.approx(12.0)
        assert old in buffer.discarded_segments

    def test_replace_missing_segment(self):
        buffer = PlaybackBuffer(allow_mid_replacement=True)
        with pytest.raises(ValueError, match="no buffered segment"):
            buffer.replace_single(seg(7))
