"""Trace-spine invariance across execution modes.

The tentpole contract: every semantic emission site (download spans,
ABR decisions, rebuffer spans, retries) fires only on serially-executed
ticks, so a serial run, an idle-only fast-forwarded run and a fully
fast-forwarded run of the same spec produce *identical* semantic
traces — the batching layers only add ``ff_jump`` meta events whose
boundaries cover the batched windows.  Likewise, per-run metrics are
pure functions of the spec, so a parallel sweep aggregates to exactly
the serial sweep's snapshot.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.analysis.faults import FaultSpec, SeededErrors
from repro.core.parallel import RunSpec, sweep_grid
from repro.core.run import aggregate_metrics, execute, run_one
from repro.obs import semantic_trace

PROFILE_ID = 9
DURATION_S = 45.0

ALL_SERVICE_NAMES = (
    "H1", "H2", "H3", "H4", "H5", "H6",
    "D1", "D2", "D3", "D4", "S1", "S2",
)


def _traces_for(spec):
    serial = run_one(spec, tracer=True, keep_result=False)
    idle_only = run_one(
        replace(spec, fast_forward=True, transfer_fast_forward=False),
        tracer=True, keep_result=False,
    )
    full = run_one(
        replace(spec, fast_forward=True), tracer=True, keep_result=False
    )
    return serial, idle_only, full


@pytest.mark.parametrize("name", ALL_SERVICE_NAMES)
def test_semantic_trace_invariant_across_execution_modes(name):
    spec = RunSpec(service=name, profile_id=PROFILE_ID, duration_s=DURATION_S)
    serial, idle_only, full = _traces_for(spec)
    reference = semantic_trace(serial.trace)
    assert reference, f"{name}: serial trace is empty"
    assert semantic_trace(idle_only.trace) == reference
    assert semantic_trace(full.trace) == reference
    # The serial run never batches, so it carries no meta events.
    assert all(event.kind != "ff_jump" for event in serial.trace)


def test_ff_jump_spans_cover_batched_windows():
    spec = RunSpec(
        service="H1",
        profile_id=PROFILE_ID,
        duration_s=DURATION_S,
        fast_forward=True,
    )
    outcome = run_one(spec, tracer=True, keep_result=False)
    jumps = [event for event in outcome.trace if event.kind == "ff_jump"]
    assert jumps, "fast-forwarded H1 run produced no ff_jump events"
    assert {jump.layer for jump in jumps} <= {"idle", "transfer"}
    for jump in jumps:
        assert jump.ticks > 0
        assert jump.end_s > jump.at
        # Window length matches the tick count (dt = 0.1).
        assert jump.end_s - jump.at == pytest.approx(jump.ticks * spec.dt)
    # The jump accounting matches the session's tick stats.
    assert sum(j.ticks for j in jumps) == (
        outcome.tick_stats.idle_fast_forwarded_ticks
        + outcome.tick_stats.transfer_fast_forwarded_ticks
    )


def test_trace_invariance_under_faults():
    """Retry and rebuffer spans survive fast-forward unchanged."""
    spec = RunSpec(
        service="H2",
        profile_id=2,
        duration_s=60.0,
        faults=FaultSpec(seeded_errors=(SeededErrors(rate=0.25),)),
    )
    serial, idle_only, full = _traces_for(spec)
    reference = semantic_trace(serial.trace)
    assert semantic_trace(idle_only.trace) == reference
    assert semantic_trace(full.trace) == reference
    kinds = {event.kind for _, event in reference}
    assert "retry" in kinds, "seeded 25% error rate produced no retries"


def test_parallel_and_serial_sweeps_agree():
    specs = sweep_grid(
        ("H1", "D1"), (2, PROFILE_ID), duration_s=DURATION_S,
        fast_forward=True,
    )
    serial = execute(specs, workers=0, tracer=True)
    parallel = execute(specs, workers=2, tracer=True)
    # RunOutcome compares spec, record, tick stats, metrics and trace.
    assert parallel == serial
    assert aggregate_metrics(parallel) == aggregate_metrics(serial)


def test_aggregated_metrics_reflect_run_totals():
    specs = [
        RunSpec(service="H1", profile_id=PROFILE_ID, duration_s=DURATION_S),
        RunSpec(service="H4", profile_id=PROFILE_ID, duration_s=DURATION_S),
    ]
    outcomes = execute(specs, workers=0)
    merged = aggregate_metrics(outcomes)
    assert merged.value("session.runs") == 2
    assert merged.total("session.ticks") == sum(
        outcome.metrics.total("session.ticks") for outcome in outcomes
    )
    assert merged.total("player.segments_completed") == sum(
        outcome.metrics.total("player.segments_completed")
        for outcome in outcomes
    )
    assert merged.total("net.bytes_delivered") > 0


def test_tick_mode_counters_shift_with_fast_forward():
    """Executed vs batched tick counters move, semantic totals don't."""
    spec = RunSpec(service="H1", profile_id=PROFILE_ID, duration_s=DURATION_S)
    serial = run_one(spec, keep_result=False)
    jumped = run_one(replace(spec, fast_forward=True), keep_result=False)
    serial_metrics, ff_metrics = serial.metrics, jumped.metrics
    assert serial_metrics.total("session.ticks") == ff_metrics.total(
        "session.ticks"
    )
    assert ff_metrics.value("session.ticks", mode="executed") < (
        serial_metrics.value("session.ticks", mode="executed")
    )
    assert serial_metrics.value("session.ff_jumps", layer="idle") == 0
    assert ff_metrics.total("session.ff_jumps") > 0
    # Everything semantic is identical.
    assert ff_metrics.total("player.segments_completed") == (
        serial_metrics.total("player.segments_completed")
    )
    assert ff_metrics.total("net.bytes_delivered") == (
        serial_metrics.total("net.bytes_delivered")
    )
