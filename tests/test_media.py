"""Unit tests for the media substrate: content, tracks, encoder."""

import math

import pytest

from repro.media import (
    DeclaredBitratePolicy,
    Encoder,
    EncoderSettings,
    EncodingMode,
    LadderRung,
    MediaAsset,
    SceneComplexity,
    Segment,
    StreamType,
    Track,
    VideoContent,
    generate_scene_complexity,
    segment_grid,
)
from repro.util import kbps


class TestSceneComplexity:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            SceneComplexity(())

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            SceneComplexity((1.0, 0.0))

    def test_at_wraps_around(self):
        trace = SceneComplexity((1.0, 2.0, 3.0))
        assert trace.at(0.5) == 1.0
        assert trace.at(4.0) == 2.0  # wraps

    def test_mean_over_exact_window(self):
        trace = SceneComplexity((1.0, 3.0))
        assert trace.mean_over(0.0, 2.0) == pytest.approx(2.0)

    def test_mean_over_fractional_window(self):
        trace = SceneComplexity((1.0, 3.0))
        # [0.5, 1.5): half a second of 1.0, half of 3.0
        assert trace.mean_over(0.5, 1.0) == pytest.approx(2.0)

    def test_peak_over(self):
        trace = SceneComplexity((1.0, 5.0, 2.0))
        assert trace.peak_over(0.0, 3.0) == 5.0
        assert trace.peak_over(2.0, 1.0) == 2.0

    def test_generated_mean_is_one(self):
        trace = generate_scene_complexity(600, seed=1)
        mean = sum(trace.values) / len(trace.values)
        assert mean == pytest.approx(1.0, abs=1e-9)

    def test_generated_is_deterministic(self):
        assert generate_scene_complexity(100, seed=2).values == \
            generate_scene_complexity(100, seed=2).values

    def test_generated_seed_sensitivity(self):
        assert generate_scene_complexity(100, seed=2).values != \
            generate_scene_complexity(100, seed=3).values

    def test_generated_peak_near_target(self):
        trace = generate_scene_complexity(600, seed=4, peak_to_mean=2.0)
        assert max(trace.values) <= 2.5
        assert max(trace.values) >= 1.3


class TestVideoContent:
    def test_generate(self):
        content = VideoContent.generate("movie", 300.0, seed=7)
        assert content.duration_s == 300.0
        assert content.complexity.duration_s >= 300

    def test_constant(self):
        content = VideoContent.constant("flat", 60.0)
        assert content.complexity.at(30.0) == 1.0

    def test_rejects_nonpositive_duration(self):
        with pytest.raises(ValueError):
            VideoContent.constant("x", 0.0)


class TestSegmentGrid:
    def test_exact_division(self):
        grid = segment_grid(20.0, 4.0)
        assert len(grid) == 5
        assert grid[-1] == (16.0, 4.0)

    def test_short_final_segment(self):
        grid = segment_grid(10.0, 4.0)
        assert len(grid) == 3
        assert grid[-1] == pytest.approx((8.0, 2.0))

    def test_total_duration_preserved(self):
        grid = segment_grid(123.4, 9.0)
        assert sum(duration for _, duration in grid) == pytest.approx(123.4)


class TestSegmentAndTrack:
    def _track(self, sizes, duration=4.0):
        segments = tuple(
            Segment(index=i, start_s=i * duration, duration_s=duration,
                    size_bytes=size)
            for i, size in enumerate(sizes)
        )
        return Track(
            track_id="t", stream_type=StreamType.VIDEO, level=0,
            declared_bitrate_bps=kbps(1000), height=720, segments=segments,
        )

    def test_actual_bitrate(self):
        segment = Segment(index=0, start_s=0, duration_s=2.0, size_bytes=250_000)
        assert segment.actual_bitrate_bps == pytest.approx(1_000_000)

    def test_track_rejects_gap_in_indexes(self):
        segments = (
            Segment(index=0, start_s=0, duration_s=4, size_bytes=10),
            Segment(index=2, start_s=4, duration_s=4, size_bytes=10),
        )
        with pytest.raises(ValueError, match="not contiguous"):
            Track(track_id="t", stream_type=StreamType.VIDEO, level=0,
                  declared_bitrate_bps=1.0, height=0, segments=segments)

    def test_track_rejects_time_gap(self):
        segments = (
            Segment(index=0, start_s=0, duration_s=4, size_bytes=10),
            Segment(index=1, start_s=5, duration_s=4, size_bytes=10),
        )
        with pytest.raises(ValueError, match="does not start"):
            Track(track_id="t", stream_type=StreamType.VIDEO, level=0,
                  declared_bitrate_bps=1.0, height=0, segments=segments)

    def test_segment_at_time(self):
        track = self._track([100, 200, 300])
        assert track.segment_at_time(0.0).index == 0
        assert track.segment_at_time(3.999).index == 0
        assert track.segment_at_time(4.0).index == 1
        assert track.segment_at_time(11.9).index == 2

    def test_segment_at_time_out_of_range(self):
        track = self._track([100, 200])
        with pytest.raises(ValueError):
            track.segment_at_time(8.0)

    def test_byte_offset_of(self):
        track = self._track([100, 200, 300])
        assert track.byte_offset_of(0) == 0
        assert track.byte_offset_of(1) == 100
        assert track.byte_offset_of(2) == 300

    def test_average_and_peak_bitrate(self):
        track = self._track([100_000, 300_000], duration=4.0)
        assert track.average_actual_bitrate_bps == pytest.approx(
            400_000 * 8 / 8.0
        )
        assert track.peak_actual_bitrate_bps == pytest.approx(300_000 * 8 / 4.0)

    def test_resolution_is_16_9(self):
        track = self._track([100])
        assert track.resolution == "1280x720"

    def test_segment_lookup_errors(self):
        track = self._track([100, 200])
        with pytest.raises(IndexError):
            track.segment(5)


class TestEncoder:
    def _encode(self, content, mode, policy, segment_duration=4.0):
        encoder = Encoder(EncoderSettings(
            segment_duration_s=segment_duration, mode=mode,
            declared_policy=policy, seed=3,
        ))
        ladder = [LadderRung(kbps(400), 270), LadderRung(kbps(1600), 720)]
        return encoder.encode_ladder(content, ladder)

    @pytest.fixture(scope="class")
    def content(self):
        return VideoContent.generate("enc-test", 240.0, seed=21)

    def test_cbr_segments_near_declared(self, content):
        tracks = self._encode(content, EncodingMode.CBR,
                              DeclaredBitratePolicy.PEAK)
        for track in tracks:
            for segment in track.segments[:-1]:
                ratio = segment.actual_bitrate_bps / track.declared_bitrate_bps
                assert 0.9 < ratio < 1.1

    def test_vbr_peak_declared_keeps_actual_below_declared(self, content):
        tracks = self._encode(content, EncodingMode.VBR,
                              DeclaredBitratePolicy.PEAK)
        for track in tracks:
            # Peak near declared, average well below (the Figure 5 shape).
            assert track.peak_actual_bitrate_bps <= track.declared_bitrate_bps * 1.25
            assert track.average_actual_bitrate_bps < track.declared_bitrate_bps * 0.85

    def test_vbr_average_declared_centers_on_declared(self, content):
        tracks = self._encode(content, EncodingMode.VBR,
                              DeclaredBitratePolicy.AVERAGE)
        for track in tracks:
            ratio = track.average_actual_bitrate_bps / track.declared_bitrate_bps
            assert 0.85 < ratio < 1.15

    def test_vbr_varies_across_segments(self, content):
        tracks = self._encode(content, EncodingMode.VBR,
                              DeclaredBitratePolicy.PEAK)
        rates = [seg.actual_bitrate_bps for seg in tracks[1].segments]
        assert max(rates) / min(rates) > 1.5  # "a factor of 2 or more" in spirit

    def test_ladder_must_ascend(self, content):
        encoder = Encoder(EncoderSettings(segment_duration_s=4.0))
        with pytest.raises(ValueError):
            encoder.encode_ladder(content, [
                LadderRung(kbps(800), 480), LadderRung(kbps(400), 270),
            ])

    def test_deterministic(self, content):
        a = self._encode(content, EncodingMode.VBR, DeclaredBitratePolicy.PEAK)
        b = self._encode(content, EncodingMode.VBR, DeclaredBitratePolicy.PEAK)
        assert [s.size_bytes for s in a[0].segments] == \
            [s.size_bytes for s in b[0].segments]

    def test_audio_constant_bitrate(self, content):
        encoder = Encoder(EncoderSettings(segment_duration_s=4.0))
        audio = encoder.encode_audio(content, kbps(64), 2.0)
        assert audio.stream_type is StreamType.AUDIO
        assert audio.segment_count == 120
        for segment in audio.segments[:-1]:
            assert abs(segment.actual_bitrate_bps - kbps(64)) / kbps(64) < 0.05

    def test_track_levels_assigned_ascending(self, content):
        tracks = self._encode(content, EncodingMode.VBR,
                              DeclaredBitratePolicy.PEAK)
        assert [t.level for t in tracks] == [0, 1]


class TestMediaAsset:
    def test_requires_video(self):
        with pytest.raises(ValueError):
            MediaAsset(asset_id="x", video_tracks=())

    def test_duration_and_counts(self, small_asset):
        assert small_asset.duration_s == pytest.approx(120.0)
        assert small_asset.segment_count() == 30
        assert small_asset.has_separate_audio

    def test_track_lookup(self, small_asset):
        assert small_asset.video_track(1).level == 1
        with pytest.raises(KeyError):
            small_asset.video_track(9)
        track = small_asset.video_tracks[0]
        assert small_asset.track_by_id(track.track_id) is track

    def test_rejects_unsorted_bitrates(self, small_asset):
        tracks = tuple(reversed(small_asset.video_tracks))
        with pytest.raises(ValueError):
            MediaAsset(asset_id="bad", video_tracks=tracks)
