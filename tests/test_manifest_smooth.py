"""SmoothStreaming manifest round-trips."""

import pytest

from repro.manifest import (
    ManifestError,
    Protocol,
    parse_any_manifest,
    parse_smooth_manifest,
)
from repro.manifest.smooth import TIMESCALE, SmoothBuilder
from repro.media.track import StreamType


@pytest.fixture(scope="module")
def builder(small_asset):
    return SmoothBuilder(base_url="https://cdn.test", asset=small_asset)


class TestRoundTrip:
    def test_protocol_and_counts(self, builder, small_asset):
        manifest = parse_smooth_manifest(builder.manifest(),
                                         builder.manifest_url)
        assert manifest.protocol is Protocol.SMOOTH
        assert len(manifest.video_tracks) == len(small_asset.video_tracks)
        assert len(manifest.audio_tracks) == 1

    def test_segments_known_immediately_without_sizes(self, builder):
        manifest = parse_smooth_manifest(builder.manifest(),
                                         builder.manifest_url)
        for track in manifest.video_tracks + manifest.audio_tracks:
            assert track.segments is not None
            assert all(seg.size_bytes is None for seg in track.segments)

    def test_fragment_urls_match_builder(self, builder, small_asset):
        manifest = parse_smooth_manifest(builder.manifest(),
                                         builder.manifest_url)
        for info, track in zip(manifest.video_tracks,
                               small_asset.video_tracks):
            for seg in info.segments[:5]:
                assert seg.url == builder.fragment_url(track, seg.index)

    def test_durations_round_trip(self, builder, small_asset):
        manifest = parse_smooth_manifest(builder.manifest(),
                                         builder.manifest_url)
        total = sum(seg.duration_s for seg in manifest.video_tracks[0].segments)
        assert total == pytest.approx(small_asset.duration_s, abs=0.01)

    def test_parse_any_detects_smooth(self, builder):
        manifest = parse_any_manifest(builder.manifest(), builder.manifest_url)
        assert manifest.protocol is Protocol.SMOOTH

    def test_audio_track_type(self, builder):
        manifest = parse_smooth_manifest(builder.manifest(),
                                         builder.manifest_url)
        assert manifest.audio_tracks[0].stream_type is StreamType.AUDIO

    def test_timescale_is_100ns(self):
        assert TIMESCALE == 10_000_000


class TestErrors:
    def test_not_xml(self):
        with pytest.raises(ManifestError):
            parse_smooth_manifest("nope", "u")

    def test_wrong_root(self):
        with pytest.raises(ManifestError, match="not a SmoothStreaming"):
            parse_smooth_manifest("<MPD/>", "u")

    def test_stream_without_chunks(self):
        text = (
            '<SmoothStreamingMedia TimeScale="10000000" Duration="1">'
            '<StreamIndex Type="video" Url="QualityLevels({bitrate})/'
            'Fragments(video={start time})">'
            '<QualityLevel Index="0" Bitrate="500000"/>'
            "</StreamIndex></SmoothStreamingMedia>"
        )
        with pytest.raises(ManifestError, match="no chunks"):
            parse_smooth_manifest(text, "u")
