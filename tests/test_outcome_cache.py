"""Sweep-fabric layer 2: the content-addressed outcome cache.

The cache leans entirely on the determinism contract — an outcome is a
pure function of its canonicalized spec and the code fingerprint — so
these tests attack exactly that: canonicalization must collapse
spellings of the same run, the fingerprint must fence off entries from
other code versions, disk corruption must read as a miss, and a hit
must compare ``==`` to a fresh computation for every one of the 12
services.
"""

from __future__ import annotations

import pickle

import pytest

from repro.cli import main
from repro.core.outcome_cache import (
    OutcomeCache,
    UncacheableSpec,
    canonical_spec,
    code_fingerprint,
    resolve_outcome_cache,
    spec_key,
)
from repro.core.parallel import RunSpec, sweep_grid
from repro.core.run import execute, run_one
from repro.obs import TraceConfig
from repro.obs.metrics import process_registry
from repro.services import ALL_SERVICE_NAMES

DURATION_S = 25.0


def _spec(**kwargs):
    defaults = dict(service="H1", profile_id=9, duration_s=DURATION_S)
    defaults.update(kwargs)
    return RunSpec(**defaults)


# ---------------------------------------------------------------------------
# Canonicalization and addressing
# ---------------------------------------------------------------------------


def test_spec_key_is_stable_and_hex():
    key = spec_key(_spec())
    assert key == spec_key(_spec())
    assert len(key) == 64
    int(key, 16)  # hex digest


def test_default_values_spelled_out_hash_identically():
    implicit = _spec()
    explicit = _spec(
        content_seed=implicit.resolved_content_seed,
        content_duration_s=DURATION_S,
        transfer_fast_forward=False,  # follows fast_forward=False
        schedule=implicit.resolved_schedule(),
    )
    assert spec_key(implicit) == spec_key(explicit)


def test_trace_and_profile_spellings_hash_identically():
    by_profile = _spec()
    by_trace = _spec(trace=by_profile.resolved_trace())
    by_schedule = _spec(schedule=by_profile.resolved_schedule())
    assert spec_key(by_profile) == spec_key(by_trace) == spec_key(by_schedule)


def test_outcome_relevant_fields_split_the_key_space():
    base = _spec()
    assert spec_key(base) != spec_key(_spec(profile_id=2))
    assert spec_key(base) != spec_key(_spec(repetition=1))
    assert spec_key(base) != spec_key(_spec(duration_s=DURATION_S + 5))
    # Fast-forward modes differ in tick stats, which outcomes compare.
    assert spec_key(base) != spec_key(_spec(fast_forward=True))
    assert spec_key(_spec(fast_forward=True)) != spec_key(
        _spec(fast_forward=True, transfer_fast_forward=False)
    )
    assert spec_key(base) != spec_key(
        _spec(config_overrides=(("startup_buffer_s", 4.0),))
    )


def test_canonical_spec_resolves_lazy_defaults():
    resolved = canonical_spec(_spec())
    assert resolved.content_seed == _spec().resolved_content_seed
    assert resolved.content_duration_s == DURATION_S
    assert resolved.trace is None
    assert resolved.schedule is not None
    assert resolved.transfer_fast_forward is False


def test_file_backed_trace_sink_is_uncacheable(tmp_path):
    spec = _spec(tracing=TraceConfig(sink="jsonl", path="/tmp/t.jsonl"))
    with pytest.raises(UncacheableSpec):
        spec_key(spec)
    cache = OutcomeCache(tmp_path)
    assert cache.get(spec) is None  # a miss, not a crash
    assert cache.put(spec, run_one(_spec(), keep_result=False)) is False


def test_code_fingerprint_is_cached_and_short():
    assert code_fingerprint() == code_fingerprint()
    assert len(code_fingerprint()) == 16


# ---------------------------------------------------------------------------
# Hit/miss behaviour
# ---------------------------------------------------------------------------


def test_cached_outcome_equals_fresh_outcome(tmp_path):
    cache = OutcomeCache(tmp_path)
    spec = _spec(fast_forward=True)
    fresh = run_one(spec, keep_result=False)
    assert cache.get(spec) is None
    assert cache.put(spec, fresh) is True
    hit = cache.get(spec)
    assert hit == fresh
    assert hit.result is None  # live graphs never ride the cache
    assert (cache.hits, cache.misses) == (1, 1)


def test_execute_second_pass_is_all_hits_all_services(tmp_path):
    cache = OutcomeCache(tmp_path)
    specs = sweep_grid(
        ALL_SERVICE_NAMES, [9], duration_s=DURATION_S, fast_forward=True
    )
    fresh = execute(specs, workers=0)
    first = execute(specs, workers=0, cache=cache)
    assert cache.hits == 0 and cache.misses == len(specs)
    second = execute(specs, workers=0, cache=cache)
    assert cache.hits == len(specs)
    assert first == fresh
    assert second == fresh  # cached outcomes == computed, all 12 services


def test_cache_composes_with_worker_pool(tmp_path):
    from repro.core.pool import close_worker_pool

    cache = OutcomeCache(tmp_path)
    specs = sweep_grid(
        ["H1", "S1"], [2, 9], duration_s=DURATION_S, fast_forward=True
    )
    try:
        first = execute(specs, workers=2, cache=cache)
        second = execute(specs, workers=2, cache=cache)
    finally:
        close_worker_pool()
    assert cache.hits == len(specs)
    assert first == second == execute(specs, workers=0)


def test_partial_cache_mixes_hits_and_fresh_runs(tmp_path):
    cache = OutcomeCache(tmp_path)
    warm_spec = _spec(service="S1")
    execute([warm_spec], workers=0, cache=cache)
    specs = [_spec(), warm_spec, _spec(profile_id=2)]
    outcomes = execute(specs, workers=0, cache=cache)
    assert cache.hits == 1  # only the pre-warmed spec
    assert outcomes == execute(specs, workers=0)


def test_keep_results_refuses_cache(tmp_path):
    with pytest.raises(ValueError, match="keep_results"):
        execute([_spec()], workers=0, keep_results=True, cache=tmp_path)


def test_counters_reach_process_registry(tmp_path):
    registry = process_registry()
    hits_before = registry.counter("outcome_cache.hits").value
    misses_before = registry.counter("outcome_cache.misses").value
    cache = OutcomeCache(tmp_path)
    spec = _spec()
    execute([spec], workers=0, cache=cache)
    execute([spec], workers=0, cache=cache)
    assert registry.counter("outcome_cache.hits").value == hits_before + 1
    assert registry.counter("outcome_cache.misses").value == misses_before + 1


# ---------------------------------------------------------------------------
# Invalidation
# ---------------------------------------------------------------------------


def test_fingerprint_bump_invalidates_entries(tmp_path):
    old = OutcomeCache(tmp_path, fingerprint="oldcode000000000")
    spec = _spec()
    outcome = run_one(spec, keep_result=False)
    old.put(spec, outcome)
    assert old.get(spec) == outcome
    new = OutcomeCache(tmp_path, fingerprint="newcode000000000")
    assert new.get(spec) is None  # other-fingerprint entries invisible
    stats = new.stats()
    assert stats.entries == 0
    assert stats.stale_entries == 1


def test_corrupted_and_truncated_entries_are_misses(tmp_path):
    cache = OutcomeCache(tmp_path)
    spec = _spec()
    outcome = run_one(spec, keep_result=False)
    cache.put(spec, outcome)
    path = cache._entry_path(spec_key(spec))

    path.write_bytes(path.read_bytes()[:20])  # truncated pickle
    assert cache.get(spec) is None
    assert not path.exists()  # unreadable entry dropped
    assert cache.invalidations == 1

    cache.put(spec, outcome)
    path.write_bytes(b"not a pickle at all")
    assert cache.get(spec) is None
    assert cache.invalidations == 2

    # An entry whose payload disagrees with its address is invalid too.
    cache.put(spec, outcome)
    entry = pickle.loads(path.read_bytes())
    entry["key"] = "0" * 64
    path.write_bytes(pickle.dumps(entry))
    assert cache.get(spec) is None
    assert cache.invalidations == 3

    # After all that abuse a clean round-trip still works.
    cache.put(spec, outcome)
    assert cache.get(spec) == outcome


def test_corrupt_unlinks_count_in_process_registry(tmp_path):
    registry = process_registry()
    before = registry.counter("cache.corrupt_unlinks").value
    cache = OutcomeCache(tmp_path)
    spec = _spec()
    outcome = run_one(spec, keep_result=False)
    cache.put(spec, outcome)
    path = cache._entry_path(spec_key(spec))
    path.write_bytes(b"junk")
    assert cache.get(spec) is None  # corrupt read unlinks the entry
    assert registry.counter("cache.corrupt_unlinks").value == before + 1
    (tmp_path / cache.fingerprint / "feedface.pkl").write_bytes(b"junk")
    cache.verify()  # verify unlinks corrupt entries too
    assert registry.counter("cache.corrupt_unlinks").value == before + 2


def test_lease_key_tolerates_side_effecting_sinks(tmp_path):
    from repro.core.outcome_cache import lease_key

    plain = _spec()
    assert lease_key(plain) == spec_key(plain)
    sink = _spec(tracing=TraceConfig(sink="jsonl", path="/tmp/t.jsonl"))
    with pytest.raises(UncacheableSpec):
        spec_key(sink)  # the shared cache still refuses side effects
    key = lease_key(sink)  # ...but the journal can address the lease
    assert key is not None and len(key) == 64
    # Explicit keys let the journal store round-trip such outcomes.
    cache = OutcomeCache(tmp_path)
    outcome = run_one(plain, keep_result=False)
    assert cache.put(plain, outcome, key=key) is True
    assert cache.get(plain, key=key) == outcome


def test_verify_counts_and_removes_corrupt_entries(tmp_path):
    cache = OutcomeCache(tmp_path)
    execute(
        [_spec(), _spec(profile_id=2)], workers=0, cache=cache
    )
    (tmp_path / cache.fingerprint / "deadbeef.pkl").write_bytes(b"junk")
    stale_dir = tmp_path / "stalefingerprint"
    stale_dir.mkdir()
    (stale_dir / "old.pkl").write_bytes(b"junk")
    report = cache.verify()
    assert (report.ok, report.corrupt, report.stale) == (2, 1, 1)
    assert not report.clean
    assert cache.verify() == type(report)(ok=2, corrupt=0, stale=1)
    assert cache.clear() == 3  # 2 live + 1 stale
    assert cache.stats().entries == 0


# ---------------------------------------------------------------------------
# resolve + CLI
# ---------------------------------------------------------------------------


def test_resolve_outcome_cache_forms(tmp_path):
    assert resolve_outcome_cache(None) is None
    assert resolve_outcome_cache(False) is None
    from_path = resolve_outcome_cache(tmp_path)
    assert isinstance(from_path, OutcomeCache)
    assert from_path.root == tmp_path
    existing = OutcomeCache(tmp_path)
    assert resolve_outcome_cache(existing) is existing
    assert isinstance(resolve_outcome_cache(True), OutcomeCache)


def test_cli_cache_stats_clear_verify(tmp_path, capsys):
    cache_dir = str(tmp_path / "cli-cache")
    code = main([
        "compare", "H1", "--profiles", "9", "--duration", "25",
        "--fast-forward", "--cache-dir", cache_dir,
    ])
    assert code == 0
    capsys.readouterr()

    assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
    out = capsys.readouterr().out
    assert "entries          : 1" in out

    assert main(["cache", "verify", "--cache-dir", cache_dir]) == 0
    out = capsys.readouterr().out
    assert "ok      : 1" in out

    assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
    out = capsys.readouterr().out
    assert "removed 1" in out


def test_cli_cache_verify_exits_nonzero_on_corruption(tmp_path, capsys):
    cache_dir = tmp_path / "cli-cache"
    cache = OutcomeCache(cache_dir)
    cache.put(_spec(), run_one(_spec(), keep_result=False))
    (cache_dir / cache.fingerprint / "deadbeef.pkl").write_bytes(b"junk")
    assert main(["cache", "verify", "--cache-dir", str(cache_dir)]) == 1
    out = capsys.readouterr().out
    assert "corrupt : 1" in out
    # The corrupt entry was removed; a re-verify is clean again.
    assert main(["cache", "verify", "--cache-dir", str(cache_dir)]) == 0


def test_cli_compare_cache_hits_on_second_run(tmp_path, capsys):
    cache_dir = str(tmp_path / "cli-cache")
    argv = [
        "compare", "H1", "--profiles", "9", "--duration", "25",
        "--fast-forward", "--cache-dir", cache_dir,
    ]
    assert main(argv) == 0
    first = capsys.readouterr().out
    assert main(argv) == 0
    second = capsys.readouterr().out
    assert first == second  # cached sweep renders the identical table
