"""Sweep-fabric layer 1: the persistent worker pool.

The pool changes *where* runs execute, never what they produce: cold
pool, warm pool, re-created pool and in-process execution must all
compare ``==``.  The pool must also survive worker-side task
exceptions and be safely re-creatable after ``close()``.

Also covers the single-flight guarantee of the asset-encode cache
(:mod:`repro.media.cache`): concurrent sessions in one process never
duplicate an expensive encode.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.core.parallel import RunSpec, catalogue_key, parallel_map, sweep_grid
from repro.core.pool import (
    WorkerPool,
    active_worker_pool,
    close_worker_pool,
    worker_pool,
)
from repro.core.run import execute
from repro.media.cache import AssetCache, asset_cache
from repro.obs.metrics import process_registry
from repro.services import get_service

DURATION_S = 25.0


@pytest.fixture(autouse=True)
def _fresh_pool():
    """Each test starts and ends without a live process-wide pool."""
    close_worker_pool()
    yield
    close_worker_pool()


def _grid(services=("H1", "S1"), profiles=(2, 9)):
    return sweep_grid(
        services, profiles, duration_s=DURATION_S, fast_forward=True
    )


def _square(x):
    return x * x


def _boom(x):
    raise RuntimeError(f"worker task failed on {x}")


def _suicide(x):
    os.kill(os.getpid(), signal.SIGKILL)


def _encode_delta(args):
    """Worker-side: encode a catalogue, report how many misses it cost."""
    service, duration_s, content_seed = args
    cache = asset_cache()
    before = cache.misses
    get_service(service).encode_asset(duration_s, content_seed)
    return cache.misses - before


# ---------------------------------------------------------------------------
# Pool lifecycle
# ---------------------------------------------------------------------------


def test_worker_pool_is_reused_across_calls():
    first = worker_pool(2)
    assert worker_pool(2) is first
    assert active_worker_pool() is first
    assert first.map(_square, [1, 2, 3]) == [1, 4, 9]
    assert first.map(_square, [4]) == [16]
    assert first.map_calls == 2
    assert first.tasks_dispatched == 4


def test_worker_pool_recreated_on_count_change_and_close():
    first = worker_pool(2)
    second = worker_pool(3)
    assert second is not first
    assert first.closed  # superseded pools are shut down
    close_worker_pool()
    assert second.closed
    assert active_worker_pool() is None
    third = worker_pool(3)
    assert third is not second
    assert third.map(_square, [5]) == [25]


def test_closed_pool_refuses_map_and_close_is_idempotent():
    pool = WorkerPool(1)
    pool.close()
    pool.close()
    with pytest.raises(RuntimeError, match="closed"):
        pool.map(_square, [1])


def test_pool_survives_worker_side_exception():
    pool = worker_pool(2)
    with pytest.raises(RuntimeError, match="worker task failed"):
        pool.map(_boom, [1, 2])
    assert not pool.closed
    # The same pool object keeps serving maps and full sweeps.
    assert pool.map(_square, [3]) == [9]
    outcomes = execute(_grid(services=("H1",), profiles=(2,)) * 2, workers=2)
    assert outcomes[0] == outcomes[1]
    assert worker_pool(2) is pool


def test_pool_spawn_counter_lands_in_process_registry():
    before = process_registry().counter("pool.spawns").value
    worker_pool(2)
    worker_pool(2)  # reused: no new spawn
    assert process_registry().counter("pool.spawns").value == before + 1


def test_warm_keys_pre_encode_catalogues_in_workers():
    # A catalogue key nothing else in the suite uses, so neither the
    # parent (via fork inheritance) nor a previous task warmed it.
    warm = ("H1", 23.0, 7707)
    pool = WorkerPool(1, warm_keys=(warm,))
    try:
        # The initializer already paid the encode: the task sees a hit.
        assert pool.map(_encode_delta, [warm]) == [0]
        # An un-warmed catalogue still costs that worker one encode.
        assert pool.map(_encode_delta, [("H1", 23.0, 7708)]) == [1]
    finally:
        pool.close()


# ---------------------------------------------------------------------------
# Future-per-task submit, failure accounting, respawn
# ---------------------------------------------------------------------------


class _BrokenAtSubmitExecutor:
    """Stub executor whose every dispatch reports a dead pool."""

    def map(self, fn, items, chunksize=1):
        raise BrokenProcessPool("stub: pool is dead")

    def submit(self, fn, item):
        raise BrokenProcessPool("stub: pool is dead")

    def shutdown(self, wait=True, cancel_futures=False):
        pass


def test_submit_returns_future_and_counts_dispatch():
    pool = worker_pool(1)
    before = process_registry().counter("pool.tasks_dispatched").value
    future = pool.submit(_square, 7)
    assert future.result(timeout=30) == 49
    assert pool.tasks_dispatched == 1
    assert process_registry().counter("pool.tasks_dispatched").value == (
        before + 1
    )
    pool.close()
    with pytest.raises(RuntimeError, match="closed"):
        pool.submit(_square, 1)


def test_submit_delivers_task_exception_on_future_pool_stays_alive():
    pool = worker_pool(1)
    future = pool.submit(_boom, 3)
    with pytest.raises(RuntimeError, match="worker task failed"):
        future.result(timeout=30)
    assert not pool.closed
    assert pool.submit(_square, 3).result(timeout=30) == 9


def test_note_task_failure_counts_in_process_registry():
    pool = worker_pool(1)
    before = process_registry().counter("pool.tasks_failed").value
    pool.note_task_failure()
    pool.note_task_failure()
    assert pool.tasks_failed == 2
    assert process_registry().counter("pool.tasks_failed").value == before + 2


def test_map_that_dies_at_submission_reports_zero_dispatches():
    # The counter-skew fix: tasks are counted only once actually handed
    # to the executor, so a map that breaks at submit time must not
    # report the full batch as dispatched.
    pool = WorkerPool(1)
    pool._executor.shutdown(wait=True, cancel_futures=True)
    pool._executor = _BrokenAtSubmitExecutor()
    with pytest.raises(BrokenProcessPool):
        pool.map(_square, [1, 2, 3])
    assert pool.tasks_dispatched == 0
    assert pool.map_calls == 1
    assert pool.closed  # a broken pool is discarded


def test_respawn_revives_pool_after_worker_death():
    pool = worker_pool(1)
    before = process_registry().counter("pool.respawns").value
    future = pool.submit(_suicide, 0)
    with pytest.raises(BrokenProcessPool):
        future.result(timeout=30)
    # The executor is broken, but the pool object survives respawn.
    pool.respawn()
    assert not pool.closed
    assert pool.respawns == 1
    assert process_registry().counter("pool.respawns").value == before + 1
    assert pool.submit(_square, 6).result(timeout=30) == 36
    assert active_worker_pool() is pool  # same process-wide identity
    pool.close()
    with pytest.raises(RuntimeError, match="closed"):
        pool.respawn()


# ---------------------------------------------------------------------------
# Warm-pool determinism
# ---------------------------------------------------------------------------


def test_repeated_execute_on_warm_pool_is_deterministic():
    specs = _grid()
    serial = execute(specs, workers=0)
    cold = execute(specs, workers=2)  # pool spawns here
    pool = active_worker_pool()
    warm = execute(specs, workers=2)  # same pool, warmed workers
    assert active_worker_pool() is pool
    assert cold == serial
    assert warm == serial


def test_interleaved_services_on_warm_pool_match_serial():
    # Alternating services defeat naive chunk locality on purpose: the
    # scheduler must still return spec-ordered, ==-equal outcomes.
    specs = [
        RunSpec(
            service=service,
            profile_id=profile_id,
            duration_s=DURATION_S,
            fast_forward=True,
        )
        for profile_id in (2, 9)
        for service in ("H1", "S1", "H1", "D2")
    ]
    serial = execute(specs, workers=0)
    parallel = execute(specs, workers=2)
    assert parallel == serial
    assert [o.record.service_name for o in parallel] == [
        spec.service for spec in specs
    ]


def test_execute_after_close_recreates_pool_with_same_outcomes():
    specs = _grid(services=("S1",), profiles=(2, 5))
    first = execute(specs, workers=2)
    close_worker_pool()
    second = execute(specs, workers=2)  # fresh pool
    assert first == second


def test_parallel_map_reuse_pool_flag():
    assert parallel_map(_square, [1, 2, 3], workers=2) == [1, 4, 9]
    pool = active_worker_pool()
    assert pool is not None
    assert parallel_map(_square, [4, 5], workers=2, reuse_pool=False) == [16, 25]
    assert active_worker_pool() is pool  # one-shot path left it alone


# ---------------------------------------------------------------------------
# Locality-aware chunk planning
# ---------------------------------------------------------------------------


def test_catalogue_key_groups_by_encode_inputs():
    a = RunSpec(service="H1", profile_id=2, duration_s=DURATION_S)
    b = RunSpec(service="H1", profile_id=9, duration_s=DURATION_S)
    assert catalogue_key(a) == catalogue_key(b)  # profiles share a catalogue
    c = RunSpec(service="H1", profile_id=2, duration_s=DURATION_S, repetition=1)
    assert catalogue_key(a) != catalogue_key(c)  # seed differs per repetition
    d = RunSpec(service="S1", profile_id=2, duration_s=DURATION_S)
    assert catalogue_key(a) != catalogue_key(d)
    e = RunSpec(
        service="H1",
        profile_id=2,
        duration_s=10.0,
        content_duration_s=DURATION_S,
    )
    assert catalogue_key(a) == catalogue_key(e)  # content duration resolves


def test_plan_chunks_keeps_catalogues_together():
    from repro.core.run import _plan_chunks

    specs = sweep_grid(["H1", "S1", "D2"], range(1, 8), duration_s=DURATION_S)
    chunks = _plan_chunks(specs, workers=2, chunksize=None)
    # Every chunk is catalogue-pure and the cover is an exact partition.
    seen = []
    for chunk in chunks:
        keys = {catalogue_key(specs[i]) for i in chunk}
        assert len(keys) == 1
        seen.extend(chunk)
    assert sorted(seen) == list(range(len(specs)))
    # Small groups stay whole: one chunk per catalogue here.
    assert len(chunks) == 3


def test_plan_chunks_explicit_chunksize_is_flat():
    from repro.core.run import _plan_chunks

    specs = sweep_grid(["H1", "S1"], range(1, 4), duration_s=DURATION_S)
    chunks = _plan_chunks(specs, workers=2, chunksize=4)
    assert chunks == [[0, 1, 2, 3], [4, 5]]
    with pytest.raises(ValueError, match="chunksize"):
        _plan_chunks(specs, workers=2, chunksize=0)


def test_execute_records_worker_encode_gauges():
    specs = _grid()
    execute(specs, workers=2)
    snapshot = process_registry().snapshot()
    rows = [
        (labels, value)
        for name, labels, value in snapshot.gauges
        if name == "pool.worker.asset_encodes"
    ]
    assert rows  # at least one worker reported
    # Two catalogues in the grid: no worker encoded more than both.
    assert all(value <= 2 for _, value in rows)


# ---------------------------------------------------------------------------
# Asset cache single-flight
# ---------------------------------------------------------------------------


def test_single_flight_deduplicates_concurrent_encodes():
    cache = AssetCache()
    encodes = []
    release = threading.Event()

    def slow_encode():
        encodes.append(threading.get_ident())
        release.wait(timeout=5.0)
        return "asset"

    results = []

    def worker():
        results.append(cache.get_or_encode("key", slow_encode))

    threads = [threading.Thread(target=worker) for _ in range(4)]
    for thread in threads:
        thread.start()
    while cache.single_flight_waits < 3:  # all followers parked
        time.sleep(0.001)
    release.set()
    for thread in threads:
        thread.join(timeout=5.0)
    assert len(encodes) == 1  # exactly one thread encoded
    assert results == ["asset"] * 4
    assert cache.misses == 1
    assert cache.hits == 3
    assert cache.single_flight_waits == 3


def test_single_flight_recovers_from_leader_failure():
    cache = AssetCache()
    first_started = threading.Event()
    fail_first = threading.Event()
    calls = []

    def flaky_encode():
        calls.append(None)
        if len(calls) == 1:
            first_started.set()
            fail_first.wait(timeout=5.0)
            raise RuntimeError("encode failed")
        return "recovered"

    errors = []

    def leader():
        try:
            cache.get_or_encode("key", flaky_encode)
        except RuntimeError as exc:
            errors.append(exc)

    leader_thread = threading.Thread(target=leader)
    leader_thread.start()
    first_started.wait(timeout=5.0)
    follower_result = []
    follower = threading.Thread(
        target=lambda: follower_result.append(
            cache.get_or_encode("key", flaky_encode)
        )
    )
    follower.start()
    while cache.single_flight_waits < 1:
        time.sleep(0.001)
    fail_first.set()
    leader_thread.join(timeout=5.0)
    follower.join(timeout=5.0)
    assert len(errors) == 1  # the leader saw its encode fail
    assert follower_result == ["recovered"]  # the follower took over
    assert len(calls) == 2


def test_asset_cache_counts_evictions_and_publishes_gauges():
    cache = AssetCache(capacity=2)
    cache.get_or_encode("a", lambda: "A")
    cache.get_or_encode("b", lambda: "B")
    cache.get_or_encode("c", lambda: "C")  # evicts a
    assert cache.evictions == 1
    assert len(cache) == 2
    # The process-wide cache mirrors its counters into the registry.
    asset_cache().get_or_encode(("gauge-probe",), lambda: "X")
    snapshot = process_registry().snapshot()
    assert snapshot.value("asset_cache.entries") >= 1
    assert snapshot.value("asset_cache.misses") >= 1
