"""CI gate: kill a journalled sweep mid-flight, resume it, compare.

The crash-safety claim of the sweep supervisor, exercised end to end
at the process level: a child process runs a journalled serial sweep
and is SIGKILL'd as soon as its journal shows partial progress; the
parent then resumes the same journal in-process and asserts that

* the resumed sweep re-executes only the journal-missing leases
  (``resumed_skips`` equals the lines the kill left behind),
* the merged outcomes are identical to a clean ``workers=0`` run, and
* the healed journal is terminal for every lease.

Deterministic by construction — the only race is *where* the kill
lands, and the contract is that it must not matter.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time

from repro.core.outcome_cache import lease_key
from repro.core.parallel import sweep_grid
from repro.core.run import execute
from repro.core.supervisor import SweepJournal, SweepSupervisor

DURATION_S = 45.0


def _grid():
    return sweep_grid(
        ["H1", "S1", "D2", "H4"],
        [2, 9],
        duration_s=DURATION_S,
        fast_forward=True,
    )


def _child(journal_dir: str) -> None:
    """Child mode: run the journalled sweep until the parent kills us."""
    execute(_grid(), workers=0, journal=journal_dir)


def _journal_lines(path: str) -> list[dict]:
    lines = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                try:
                    lines.append(json.loads(line))
                except json.JSONDecodeError:
                    pass  # torn tail: exactly what the kill may leave
    except FileNotFoundError:
        pass
    return lines


def main() -> None:
    grid = _grid()
    reference = execute(grid, workers=0)
    with tempfile.TemporaryDirectory() as root:
        journal_path = os.path.join(root, "journal.jsonl")
        child = subprocess.Popen(
            [sys.executable, __file__, "--child", root],
            env=os.environ.copy(),
        )
        # Kill as soon as the journal shows partial progress (at least
        # one lease done, with luck not yet all of them).
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            if child.poll() is not None:
                break
            if len(_journal_lines(journal_path)) >= 2:
                child.send_signal(signal.SIGKILL)
                break
            time.sleep(0.02)
        child.wait(timeout=60)

        done_before = {
            entry["spec_sha"]
            for entry in _journal_lines(journal_path)
            if entry.get("status") == "done"
        }
        if len(done_before) == len(grid):
            # The child out-ran the poll loop; the resume below then
            # degenerates to the all-skip case, which is still a gate.
            print("note: child completed before the kill landed")

        supervisor = SweepSupervisor(0, journal=SweepJournal(root))
        resumed = supervisor.run(grid)

        assert resumed == reference, "resumed outcomes differ from clean run"
        assert supervisor.stats.resumed_skips == len(done_before), (
            supervisor.stats.resumed_skips,
            len(done_before),
        )
        healed = SweepJournal(root)
        for spec in grid:
            entry = healed.completed(lease_key(spec))
            assert entry is not None, f"lease not terminal: {spec}"
            assert entry["status"] == "done"
    print(
        f"sweep resume gate: {len(grid)} leases, killed child after "
        f"{len(done_before)} completed, resume re-ran "
        f"{len(grid) - len(done_before)} and matched the clean run"
    )


if __name__ == "__main__":
    if len(sys.argv) > 1 and sys.argv[1] == "--child":
        _child(sys.argv[2])
    else:
        main()
