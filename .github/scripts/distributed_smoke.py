"""CI gate: distributed sweep over real daemons, one SIGKILL'd mid-run.

The distributed fabric's crash-safety claim, exercised end to end at
the process level: two ``repro worker`` daemons serve loopback
sockets, a coordinator shards a journalled sweep across both, and one
daemon is SIGKILL'd as soon as the journal shows progress.  The gate
asserts that

* the sweep still completes — the dead worker's unfinished leases are
  re-dispatched to the survivor (or finished by the local fallback if
  the survivor was already done),
* the merged outcomes are identical to a clean ``workers=0`` run, and
* a second coordinator over the same journal resumes to an immediate
  all-skip: zero leases re-sent, identical outcomes again.

Deterministic by construction — the only race is *where* the kill
lands, and the contract is that it must not matter.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.core.distributed import SweepCoordinator
from repro.core.outcome_cache import lease_key
from repro.core.parallel import sweep_grid
from repro.core.run import execute
from repro.core.supervisor import SweepJournal

DURATION_S = 45.0


def _grid():
    return sweep_grid(
        ["H1", "S1", "D2", "H4", "H6", "D1"],
        [2, 9],
        duration_s=DURATION_S,
        fast_forward=True,
    )


def _spawn_worker(label: str) -> tuple[subprocess.Popen, str]:
    env = os.environ.copy()
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "worker",
         "--listen", "127.0.0.1:0", "--label", label],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    line = process.stdout.readline()
    match = re.search(r"listening on (\S+)", line)
    assert match, f"worker {label} failed to start: {line!r}"
    return process, match.group(1)


def _journal_lines(path: Path) -> list[dict]:
    lines = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                try:
                    lines.append(json.loads(line))
                except json.JSONDecodeError:
                    pass  # torn tail: possible under group commit
    except FileNotFoundError:
        pass
    return lines


def main() -> None:
    grid = _grid()
    reference = execute(grid, workers=0)

    victim, victim_addr = _spawn_worker("victim")
    survivor, survivor_addr = _spawn_worker("survivor")
    killed = threading.Event()
    try:
        with tempfile.TemporaryDirectory() as root:
            journal_path = Path(root) / "journal.jsonl"

            def kill_on_progress() -> None:
                deadline = time.monotonic() + 120.0
                while time.monotonic() < deadline:
                    if len(_journal_lines(journal_path)) >= 1:
                        victim.send_signal(signal.SIGKILL)
                        killed.set()
                        return
                    time.sleep(0.002)

            killer = threading.Thread(target=kill_on_progress, daemon=True)
            killer.start()
            coordinator = SweepCoordinator(
                [victim_addr, survivor_addr],
                journal=SweepJournal(root),
                # Flush every line: the killer keys off journal growth.
                journal_flush_every=1,
                io_timeout_s=60.0,
            )
            outcomes = coordinator.run(grid)
            killer.join(timeout=120.0)

            assert outcomes == reference, (
                "distributed outcomes differ from the clean serial run"
            )
            if not killed.is_set():
                print("note: sweep completed before the kill landed")
            elif coordinator.stats.worker_deaths == 0:
                # The victim died between shards; the coordinator saw a
                # clean bye instead of a mid-shard EOF.  Still a pass:
                # the kill provably did not corrupt the sweep.
                print("note: kill landed between shards (no mid-shard "
                      "death observed)")
            else:
                print(f"kill landed mid-shard: "
                      f"{coordinator.stats.worker_deaths} worker death(s), "
                      f"{coordinator.stats.redispatched_leases} lease(s) "
                      f"re-dispatched, "
                      f"{coordinator.stats.local_fallback_leases} finished "
                      f"by the local fallback")

            healed = SweepJournal(root)
            for spec in grid:
                entry = healed.completed(lease_key(spec))
                assert entry is not None, f"lease not terminal: {spec}"
                assert entry["status"] == "done"

            # Resume: a fresh coordinator over the merged journal skips
            # everything, even with every remote gone.
            resumed = SweepCoordinator(
                ["127.0.0.1:1"],
                journal=SweepJournal(root),
                connect_timeout_s=1.0,
            )
            again = resumed.run(grid)
            assert again == reference, "resumed outcomes differ"
            assert resumed.stats.leases_sent == 0, "resume re-sent leases"
            assert resumed.stats.local_fallback_leases == 0, (
                "resume re-ran leases locally"
            )
    finally:
        for process in (victim, survivor):
            if process.poll() is None:
                process.kill()
            process.wait(timeout=10)

    print(
        f"distributed smoke gate: {len(grid)} leases over 2 workers, "
        f"victim SIGKILL'd, merged journal healed, outcomes and resume "
        f"both matched the clean run"
    )


if __name__ == "__main__":
    main()
