"""CI gate: the full grid swept twice through the outcome cache.

Deterministic by construction — no wall-clock thresholds, so it can
gate where the perf benchmarks cannot: the second pass must be a 100%
cache hit and outcome-identical to both the first pass and a
cache-free serial sweep.
"""

from __future__ import annotations

import tempfile

from repro.core.outcome_cache import OutcomeCache
from repro.core.parallel import sweep_grid
from repro.core.run import execute
from repro.net.traces import PROFILE_COUNT
from repro.services import ALL_SERVICE_NAMES


def main() -> None:
    grid = sweep_grid(
        ALL_SERVICE_NAMES,
        range(1, PROFILE_COUNT + 1),
        duration_s=45.0,
        fast_forward=True,
    )
    reference = execute(grid, workers=0)
    with tempfile.TemporaryDirectory() as root:
        cache = OutcomeCache(root)
        first = execute(grid, workers=0, cache=cache)
        second = execute(grid, workers=0, cache=cache)
        assert cache.misses == len(grid), (cache.misses, len(grid))
        assert cache.hits == len(grid), (cache.hits, len(grid))
        assert first == reference
        assert second == reference
    print(
        f"fabric cache gate: {len(grid)} runs, "
        "second pass 100% hits, records identical"
    )


if __name__ == "__main__":
    main()
